//! Parameter-free activation layers.

use fedms_tensor::Tensor;

use crate::{Layer, NnError, Result};

macro_rules! activation_layer {
    ($(#[$doc:meta])* $name:ident, $tag:literal, $fwd:expr, $gate:expr) => {
        $(#[$doc])*
        #[derive(Debug, Clone, Default)]
        pub struct $name {
            cached_input: Option<Tensor>,
        }

        impl $name {
            /// Creates the activation layer.
            pub fn new() -> Self {
                Self { cached_input: None }
            }
        }

        impl Layer for $name {
            fn name(&self) -> &'static str {
                $tag
            }

            fn forward(&mut self, input: &Tensor) -> Result<Tensor> {
                self.cached_input = Some(input.clone());
                Ok(input.map($fwd))
            }

            fn backward(&mut self, grad_out: &Tensor) -> Result<Tensor> {
                let input = self
                    .cached_input
                    .as_ref()
                    .ok_or(NnError::NoForwardCache($tag))?;
                if input.shape() != grad_out.shape() {
                    return Err(fedms_tensor::TensorError::ShapeMismatch {
                        left: grad_out.dims().to_vec(),
                        right: input.dims().to_vec(),
                    }
                    .into());
                }
                let gate = $gate;
                let mut out = grad_out.clone();
                for (g, &x) in out.as_mut_slice().iter_mut().zip(input.as_slice()) {
                    *g *= gate(x);
                }
                Ok(out)
            }

            fn params(&self) -> Vec<&Tensor> {
                Vec::new()
            }

            fn params_mut(&mut self) -> Vec<&mut Tensor> {
                Vec::new()
            }

            fn grads(&self) -> Vec<&Tensor> {
                Vec::new()
            }

            fn zero_grads(&mut self) {}
        }
    };
}

activation_layer!(
    /// Rectified linear unit: `max(0, x)`.
    ReLU,
    "relu",
    |x| x.max(0.0),
    |x: f32| if x > 0.0 { 1.0 } else { 0.0 }
);

activation_layer!(
    /// ReLU clipped at 6: `min(max(0, x), 6)` — the MobileNetV2 activation.
    ReLU6,
    "relu6",
    |x| x.clamp(0.0, 6.0),
    |x: f32| if x > 0.0 && x < 6.0 { 1.0 } else { 0.0 }
);

activation_layer!(
    /// Leaky ReLU with fixed slope 0.01 for negative inputs.
    LeakyReLU,
    "leaky_relu",
    |x| if x > 0.0 { x } else { 0.01 * x },
    |x: f32| if x > 0.0 { 1.0 } else { 0.01 }
);

activation_layer!(
    /// Logistic sigmoid `1/(1+e^{−x})`.
    Sigmoid,
    "sigmoid",
    |x| 1.0 / (1.0 + (-x).exp()),
    |x: f32| {
        let s = 1.0 / (1.0 + (-x).exp());
        s * (1.0 - s)
    }
);

activation_layer!(
    /// Hyperbolic tangent.
    Tanh,
    "tanh",
    |x| x.tanh(),
    |x: f32| {
        let t = x.tanh();
        1.0 - t * t
    }
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relu_forward() {
        let mut l = ReLU::new();
        let y = l.forward(&Tensor::from_slice(&[-1.0, 0.0, 2.0])).unwrap();
        assert_eq!(y.as_slice(), &[0.0, 0.0, 2.0]);
    }

    #[test]
    fn relu6_clips_both_sides() {
        let mut l = ReLU6::new();
        let y = l.forward(&Tensor::from_slice(&[-1.0, 3.0, 9.0])).unwrap();
        assert_eq!(y.as_slice(), &[0.0, 3.0, 6.0]);
    }

    #[test]
    fn leaky_relu_negative_slope() {
        let mut l = LeakyReLU::new();
        let y = l.forward(&Tensor::from_slice(&[-2.0, 2.0])).unwrap();
        assert_eq!(y.as_slice(), &[-0.02, 2.0]);
    }

    #[test]
    fn backward_gates_gradient() {
        let mut l = ReLU::new();
        l.forward(&Tensor::from_slice(&[-1.0, 1.0])).unwrap();
        let g = l.backward(&Tensor::from_slice(&[5.0, 5.0])).unwrap();
        assert_eq!(g.as_slice(), &[0.0, 5.0]);
    }

    #[test]
    fn relu6_backward_gates_above_six() {
        let mut l = ReLU6::new();
        l.forward(&Tensor::from_slice(&[-1.0, 3.0, 7.0])).unwrap();
        let g = l.backward(&Tensor::from_slice(&[1.0, 1.0, 1.0])).unwrap();
        assert_eq!(g.as_slice(), &[0.0, 1.0, 0.0]);
    }

    #[test]
    fn backward_requires_forward() {
        let mut l = ReLU::new();
        assert!(matches!(l.backward(&Tensor::zeros(&[2])), Err(NnError::NoForwardCache(_))));
    }

    #[test]
    fn backward_rejects_shape_mismatch() {
        let mut l = ReLU::new();
        l.forward(&Tensor::zeros(&[3])).unwrap();
        assert!(l.backward(&Tensor::zeros(&[2])).is_err());
    }

    #[test]
    fn activations_have_no_params() {
        let l = ReLU6::new();
        assert!(l.params().is_empty());
        assert!(l.grads().is_empty());
        assert_eq!(l.num_params(), 0);
    }

    #[test]
    fn gradient_matches_numerical() {
        // LeakyReLU is differentiable a.e. with nonzero slope everywhere,
        // making it the cleanest numerical check of the macro's backward.
        crate::gradcheck::check_layer(Box::new(LeakyReLU::new()), &[2, 5], 3, 2e-2).unwrap();
    }

    #[test]
    fn sigmoid_range_and_midpoint() {
        let mut l = Sigmoid::new();
        let y = l.forward(&Tensor::from_slice(&[-100.0, 0.0, 100.0])).unwrap();
        assert!(y.as_slice()[0] < 1e-6);
        assert!((y.as_slice()[1] - 0.5).abs() < 1e-6);
        assert!(y.as_slice()[2] > 1.0 - 1e-6);
    }

    #[test]
    fn tanh_is_odd() {
        let mut l = Tanh::new();
        let y = l.forward(&Tensor::from_slice(&[-1.0, 0.0, 1.0])).unwrap();
        assert!((y.as_slice()[0] + y.as_slice()[2]).abs() < 1e-6);
        assert_eq!(y.as_slice()[1], 0.0);
    }

    #[test]
    fn smooth_activations_pass_gradcheck() {
        crate::gradcheck::check_layer(Box::new(Sigmoid::new()), &[3, 4], 5, 2e-2).unwrap();
        crate::gradcheck::check_layer(Box::new(Tanh::new()), &[3, 4], 7, 2e-2).unwrap();
    }
}
