//! Sequential composition of layers.

use fedms_tensor::{BackendHandle, Tensor};

use crate::{Layer, NnError, Result};

/// A chain of layers applied in order; itself a [`Layer`], so sequences nest
/// (used by the inverted-residual blocks of
/// [`MobileNetNano`](crate::MobileNetNano)).
#[derive(Default)]
pub struct Sequential {
    layers: Vec<Box<dyn Layer>>,
    backend: BackendHandle,
}

impl std::fmt::Debug for Sequential {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Sequential")
            .field("layers", &self.layers.iter().map(|l| l.name()).collect::<Vec<_>>())
            .finish()
    }
}

impl Sequential {
    /// Creates an empty sequence.
    pub fn new() -> Self {
        Sequential::default()
    }

    /// Appends a layer, returning `self` for chaining.
    #[must_use]
    pub fn with(mut self, layer: impl Layer + 'static) -> Self {
        let mut boxed = Box::new(layer);
        boxed.set_backend(self.backend);
        self.layers.push(boxed);
        self
    }

    /// Appends a boxed layer.
    pub fn push(&mut self, mut layer: Box<dyn Layer>) {
        layer.set_backend(self.backend);
        self.layers.push(layer);
    }

    /// Number of layers in the chain.
    pub fn len(&self) -> usize {
        self.layers.len()
    }

    /// Whether the chain is empty.
    pub fn is_empty(&self) -> bool {
        self.layers.is_empty()
    }
}

impl Layer for Sequential {
    fn name(&self) -> &'static str {
        "sequential"
    }

    fn forward(&mut self, input: &Tensor) -> Result<Tensor> {
        if self.layers.is_empty() {
            return Err(NnError::BadConfig("forward through empty sequential".into()));
        }
        let mut x = self.layers[0].forward(input)?;
        for layer in &mut self.layers[1..] {
            x = layer.forward(&x)?;
        }
        Ok(x)
    }

    fn backward(&mut self, grad_out: &Tensor) -> Result<Tensor> {
        if self.layers.is_empty() {
            return Err(NnError::BadConfig("backward through empty sequential".into()));
        }
        let mut g = grad_out.clone();
        for layer in self.layers.iter_mut().rev() {
            g = layer.backward(&g)?;
        }
        Ok(g)
    }

    fn params(&self) -> Vec<&Tensor> {
        self.layers.iter().flat_map(|l| l.params()).collect()
    }

    fn params_mut(&mut self) -> Vec<&mut Tensor> {
        self.layers.iter_mut().flat_map(|l| l.params_mut()).collect()
    }

    fn grads(&self) -> Vec<&Tensor> {
        self.layers.iter().flat_map(|l| l.grads()).collect()
    }

    fn zero_grads(&mut self) {
        for l in &mut self.layers {
            l.zero_grads();
        }
    }

    fn set_training(&mut self, training: bool) {
        for l in &mut self.layers {
            l.set_training(training);
        }
    }

    fn set_backend(&mut self, backend: BackendHandle) {
        self.backend = backend;
        for l in &mut self.layers {
            l.set_backend(backend);
        }
    }

    fn backend(&self) -> BackendHandle {
        self.backend
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{LeakyReLU, Linear, ReLU};
    use fedms_tensor::rng::rng_for;

    #[test]
    fn empty_sequential_errors() {
        let mut s = Sequential::new();
        assert!(s.is_empty());
        assert!(s.forward(&Tensor::zeros(&[1, 2])).is_err());
        assert!(s.backward(&Tensor::zeros(&[1, 2])).is_err());
    }

    #[test]
    fn chains_layers_in_order() {
        let mut rng = rng_for(1, &[]);
        let mut s = Sequential::new()
            .with(Linear::new(3, 4, &mut rng).unwrap())
            .with(ReLU::new())
            .with(Linear::new(4, 2, &mut rng).unwrap());
        assert_eq!(s.len(), 3);
        let y = s.forward(&Tensor::zeros(&[5, 3])).unwrap();
        assert_eq!(y.dims(), &[5, 2]);
    }

    #[test]
    fn params_concatenated_positionally() {
        let mut rng = rng_for(2, &[]);
        let s = Sequential::new()
            .with(Linear::new(3, 4, &mut rng).unwrap())
            .with(ReLU::new())
            .with(Linear::new(4, 2, &mut rng).unwrap());
        assert_eq!(s.params().len(), 4); // 2 weights + 2 biases
        assert_eq!(s.num_params(), 3 * 4 + 4 + 4 * 2 + 2);
        assert_eq!(s.params().len(), s.grads().len());
    }

    #[test]
    fn zero_grads_propagates() {
        let mut rng = rng_for(3, &[]);
        let mut s = Sequential::new().with(Linear::new(2, 2, &mut rng).unwrap());
        let x = Tensor::ones(&[1, 2]);
        let y = s.forward(&x).unwrap();
        s.backward(&y).unwrap();
        assert!(s.grads()[0].as_slice().iter().any(|&v| v != 0.0));
        s.zero_grads();
        assert!(s.grads()[0].as_slice().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn gradient_matches_numerical() {
        let mut rng = rng_for(4, &[]);
        let s = Sequential::new()
            .with(Linear::new(4, 6, &mut rng).unwrap())
            .with(LeakyReLU::new())
            .with(Linear::new(6, 3, &mut rng).unwrap());
        crate::gradcheck::check_layer(Box::new(s), &[3, 4], 29, 2e-2).unwrap();
    }
}
