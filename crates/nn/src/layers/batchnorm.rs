//! 2-D batch normalisation.

use fedms_tensor::{Tensor, TensorError};

use crate::{Layer, NnError, Result};

/// Per-channel batch normalisation over `(batch, C, H, W)` inputs
/// (Ioffe & Szegedy, 2015) — the normalisation MobileNetV2 uses after every
/// convolution.
///
/// Trainable parameters are the affine `γ` (scale) and `β` (shift); the
/// running mean/variance used at inference are **buffers**, not parameters,
/// and are deliberately excluded from [`Layer::params`]: in the federated
/// setting each client keeps its own normalisation statistics (the FedBN
/// convention), so the aggregation layer never mixes them.
#[derive(Debug, Clone)]
pub struct BatchNorm2d {
    channels: usize,
    eps: f32,
    momentum: f32,
    gamma: Tensor,
    beta: Tensor,
    grad_gamma: Tensor,
    grad_beta: Tensor,
    running_mean: Tensor,
    running_var: Tensor,
    training: bool,
    cache: Option<BnCache>,
}

#[derive(Debug, Clone)]
struct BnCache {
    normalized: Tensor,
    inv_std: Vec<f32>,
    dims: [usize; 4],
    used_batch_stats: bool,
}

impl BatchNorm2d {
    /// Creates a batch-norm layer for `channels` channels with γ = 1,
    /// β = 0, ε = 1e-5 and running-stat momentum 0.1.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::BadConfig`] for zero channels.
    pub fn new(channels: usize) -> Result<Self> {
        if channels == 0 {
            return Err(NnError::BadConfig("batch norm needs at least one channel".into()));
        }
        Ok(BatchNorm2d {
            channels,
            eps: 1e-5,
            momentum: 0.1,
            gamma: Tensor::ones(&[channels]),
            beta: Tensor::zeros(&[channels]),
            grad_gamma: Tensor::zeros(&[channels]),
            grad_beta: Tensor::zeros(&[channels]),
            running_mean: Tensor::zeros(&[channels]),
            running_var: Tensor::ones(&[channels]),
            training: true,
            cache: None,
        })
    }

    /// The tracked running mean (inference statistics).
    pub fn running_mean(&self) -> &Tensor {
        &self.running_mean
    }

    /// The tracked running variance (inference statistics).
    pub fn running_var(&self) -> &Tensor {
        &self.running_var
    }

    fn check_input(&self, input: &Tensor) -> Result<[usize; 4]> {
        if input.rank() != 4 {
            return Err(TensorError::RankMismatch { expected: 4, got: input.rank() }.into());
        }
        let d = input.dims();
        if d[1] != self.channels {
            return Err(TensorError::ShapeMismatch {
                left: d.to_vec(),
                right: vec![d[0], self.channels, d[2], d[3]],
            }
            .into());
        }
        Ok([d[0], d[1], d[2], d[3]])
    }
}

impl Layer for BatchNorm2d {
    fn name(&self) -> &'static str {
        "batch_norm2d"
    }

    fn forward(&mut self, input: &Tensor) -> Result<Tensor> {
        let [b, c, h, w] = self.check_input(input)?;
        let plane = h * w;
        let per_channel = b * plane;
        let src = input.as_slice();

        // Channel statistics: batch stats when training, running stats at
        // inference.
        let mut mean = vec![0.0f64; c];
        let mut var = vec![0.0f64; c];
        if self.training {
            for (ci, m) in mean.iter_mut().enumerate() {
                for bi in 0..b {
                    let base = (bi * c + ci) * plane;
                    for &v in &src[base..base + plane] {
                        *m += v as f64;
                    }
                }
            }
            for m in &mut mean {
                *m /= per_channel as f64;
            }
            for bi in 0..b {
                for ci in 0..c {
                    let base = (bi * c + ci) * plane;
                    for &v in &src[base..base + plane] {
                        let d = v as f64 - mean[ci];
                        var[ci] += d * d;
                    }
                }
            }
            for v in &mut var {
                *v /= per_channel as f64;
            }
            // Update running statistics.
            for ci in 0..c {
                let rm = &mut self.running_mean.as_mut_slice()[ci];
                *rm = (1.0 - self.momentum) * *rm + self.momentum * mean[ci] as f32;
                let rv = &mut self.running_var.as_mut_slice()[ci];
                *rv = (1.0 - self.momentum) * *rv + self.momentum * var[ci] as f32;
            }
        } else {
            for ci in 0..c {
                mean[ci] = self.running_mean.as_slice()[ci] as f64;
                var[ci] = self.running_var.as_slice()[ci] as f64;
            }
        }

        let inv_std: Vec<f32> = var.iter().map(|&v| 1.0 / ((v as f32 + self.eps).sqrt())).collect();
        let mut normalized = Tensor::zeros(&[b, c, h, w]);
        let mut out = Tensor::zeros(&[b, c, h, w]);
        for bi in 0..b {
            for ci in 0..c {
                let base = (bi * c + ci) * plane;
                let g = self.gamma.as_slice()[ci];
                let bt = self.beta.as_slice()[ci];
                for p in 0..plane {
                    let xhat = (src[base + p] - mean[ci] as f32) * inv_std[ci];
                    normalized.as_mut_slice()[base + p] = xhat;
                    out.as_mut_slice()[base + p] = g * xhat + bt;
                }
            }
        }
        self.cache = Some(BnCache {
            normalized,
            inv_std,
            dims: [b, c, h, w],
            used_batch_stats: self.training,
        });
        Ok(out)
    }

    fn backward(&mut self, grad_out: &Tensor) -> Result<Tensor> {
        let cache = self.cache.as_ref().ok_or(NnError::NoForwardCache("batch_norm2d"))?;
        let [b, c, h, w] = cache.dims;
        if grad_out.dims() != [b, c, h, w] {
            return Err(TensorError::ShapeMismatch {
                left: grad_out.dims().to_vec(),
                right: vec![b, c, h, w],
            }
            .into());
        }
        let plane = h * w;
        let m = (b * plane) as f64;
        let dy = grad_out.as_slice();
        let xhat = cache.normalized.as_slice();
        let mut grad_in = Tensor::zeros(&[b, c, h, w]);

        for ci in 0..c {
            // Channel reductions: Σdy and Σdy·x̂.
            let mut sum_dy = 0.0f64;
            let mut sum_dy_xhat = 0.0f64;
            for bi in 0..b {
                let base = (bi * c + ci) * plane;
                for p in 0..plane {
                    sum_dy += dy[base + p] as f64;
                    sum_dy_xhat += dy[base + p] as f64 * xhat[base + p] as f64;
                }
            }
            self.grad_beta.as_mut_slice()[ci] += sum_dy as f32;
            self.grad_gamma.as_mut_slice()[ci] += sum_dy_xhat as f32;

            let g = self.gamma.as_slice()[ci] as f64;
            let inv_std = cache.inv_std[ci] as f64;
            for bi in 0..b {
                let base = (bi * c + ci) * plane;
                for p in 0..plane {
                    let d = if cache.used_batch_stats {
                        // Full batch-norm backward.
                        g * inv_std / m
                            * (m * dy[base + p] as f64
                                - sum_dy
                                - xhat[base + p] as f64 * sum_dy_xhat)
                    } else {
                        // Inference statistics are constants: pure affine.
                        g * inv_std * dy[base + p] as f64
                    };
                    grad_in.as_mut_slice()[base + p] = d as f32;
                }
            }
        }
        Ok(grad_in)
    }

    fn params(&self) -> Vec<&Tensor> {
        vec![&self.gamma, &self.beta]
    }

    fn params_mut(&mut self) -> Vec<&mut Tensor> {
        vec![&mut self.gamma, &mut self.beta]
    }

    fn grads(&self) -> Vec<&Tensor> {
        vec![&self.grad_gamma, &self.grad_beta]
    }

    fn zero_grads(&mut self) {
        self.grad_gamma.scale(0.0);
        self.grad_beta.scale(0.0);
    }

    fn set_training(&mut self, training: bool) {
        self.training = training;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fedms_tensor::rng::rng_for;

    #[test]
    fn validates_channels() {
        assert!(BatchNorm2d::new(0).is_err());
        assert!(BatchNorm2d::new(3).is_ok());
    }

    #[test]
    fn training_forward_normalizes_per_channel() {
        let mut bn = BatchNorm2d::new(2).unwrap();
        let mut rng = rng_for(1, &[]);
        let x = Tensor::randn(&mut rng, &[4, 2, 3, 3], 5.0, 2.0);
        let y = bn.forward(&x).unwrap();
        // With γ=1, β=0 the output of each channel has ≈0 mean, ≈1 var.
        let plane = 9;
        for ci in 0..2 {
            let mut vals = Vec::new();
            for bi in 0..4 {
                let base = (bi * 2 + ci) * plane;
                vals.extend_from_slice(&y.as_slice()[base..base + plane]);
            }
            let mean: f32 = vals.iter().sum::<f32>() / vals.len() as f32;
            let var: f32 =
                vals.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / vals.len() as f32;
            assert!(mean.abs() < 1e-4, "channel mean {mean}");
            assert!((var - 1.0).abs() < 1e-2, "channel var {var}");
        }
    }

    #[test]
    fn running_stats_track_data() {
        let mut bn = BatchNorm2d::new(1).unwrap();
        let mut rng = rng_for(2, &[]);
        for _ in 0..200 {
            let x = Tensor::randn(&mut rng, &[8, 1, 2, 2], 3.0, 0.5);
            bn.forward(&x).unwrap();
        }
        let rm = bn.running_mean().as_slice()[0];
        let rv = bn.running_var().as_slice()[0];
        assert!((rm - 3.0).abs() < 0.1, "running mean {rm}");
        assert!((rv - 0.25).abs() < 0.1, "running var {rv}");
    }

    #[test]
    fn eval_mode_uses_running_stats() {
        let mut bn = BatchNorm2d::new(1).unwrap();
        bn.running_mean.as_mut_slice()[0] = 10.0;
        bn.running_var.as_mut_slice()[0] = 4.0;
        bn.set_training(false);
        let x = Tensor::full(&[1, 1, 2, 2], 12.0);
        let y = bn.forward(&x).unwrap();
        // (12 − 10)/2 = 1 in every position.
        for &v in y.as_slice() {
            assert!((v - 1.0).abs() < 1e-3);
        }
        // Eval mode must not touch the running stats.
        assert_eq!(bn.running_mean().as_slice()[0], 10.0);
    }

    #[test]
    fn affine_params_are_trainable_buffers_are_not() {
        let bn = BatchNorm2d::new(3).unwrap();
        assert_eq!(bn.num_params(), 6, "gamma + beta only — FedBN keeps stats local");
    }

    #[test]
    fn backward_requires_forward_and_validates_shape() {
        let mut bn = BatchNorm2d::new(1).unwrap();
        assert!(matches!(
            bn.backward(&Tensor::zeros(&[1, 1, 2, 2])),
            Err(NnError::NoForwardCache(_))
        ));
        bn.forward(&Tensor::zeros(&[1, 1, 2, 2])).unwrap();
        assert!(bn.backward(&Tensor::zeros(&[1, 1, 3, 3])).is_err());
    }

    #[test]
    fn train_mode_gradient_matches_numerical() {
        let bn = BatchNorm2d::new(2).unwrap();
        crate::gradcheck::check_layer(Box::new(bn), &[3, 2, 3, 3], 61, 4e-2).unwrap();
    }

    #[test]
    fn eval_mode_gradient_matches_numerical() {
        let mut bn = BatchNorm2d::new(2).unwrap();
        // Seed non-trivial running stats, then freeze.
        let mut rng = rng_for(3, &[]);
        bn.forward(&Tensor::randn(&mut rng, &[4, 2, 3, 3], 1.0, 2.0)).unwrap();
        bn.set_training(false);
        crate::gradcheck::check_layer(Box::new(bn), &[2, 2, 3, 3], 67, 2e-2).unwrap();
    }
}
