//! Pooling and reshaping layers.

use fedms_tensor::{Tensor, TensorError};

use crate::{Layer, NnError, Result};

/// Global average pooling: `(batch, C, H, W) → (batch, C)`.
///
/// Each output channel is the mean of its `H·W` spatial positions — the
/// MobileNetV2 head before the classifier.
#[derive(Debug, Clone, Default)]
pub struct GlobalAvgPool {
    cached_dims: Option<[usize; 4]>,
}

impl GlobalAvgPool {
    /// Creates the pooling layer.
    pub fn new() -> Self {
        GlobalAvgPool { cached_dims: None }
    }
}

impl Layer for GlobalAvgPool {
    fn name(&self) -> &'static str {
        "global_avg_pool"
    }

    fn forward(&mut self, input: &Tensor) -> Result<Tensor> {
        if input.rank() != 4 {
            return Err(TensorError::RankMismatch { expected: 4, got: input.rank() }.into());
        }
        let [b, c, h, w] = [input.dims()[0], input.dims()[1], input.dims()[2], input.dims()[3]];
        if h * w == 0 {
            return Err(TensorError::Empty("global average pool over empty plane").into());
        }
        self.cached_dims = Some([b, c, h, w]);
        let plane = h * w;
        let inv = 1.0 / plane as f32;
        let src = input.as_slice();
        let mut out = Tensor::zeros(&[b, c]);
        for i in 0..b * c {
            out.as_mut_slice()[i] = src[i * plane..(i + 1) * plane].iter().sum::<f32>() * inv;
        }
        Ok(out)
    }

    fn backward(&mut self, grad_out: &Tensor) -> Result<Tensor> {
        let [b, c, h, w] = self.cached_dims.ok_or(NnError::NoForwardCache("global_avg_pool"))?;
        if grad_out.dims() != [b, c] {
            return Err(TensorError::ShapeMismatch {
                left: grad_out.dims().to_vec(),
                right: vec![b, c],
            }
            .into());
        }
        let plane = h * w;
        let inv = 1.0 / plane as f32;
        let mut grad_in = Tensor::zeros(&[b, c, h, w]);
        for (i, &g) in grad_out.as_slice().iter().enumerate() {
            for v in &mut grad_in.as_mut_slice()[i * plane..(i + 1) * plane] {
                *v = g * inv;
            }
        }
        Ok(grad_in)
    }

    fn params(&self) -> Vec<&Tensor> {
        Vec::new()
    }

    fn params_mut(&mut self) -> Vec<&mut Tensor> {
        Vec::new()
    }

    fn grads(&self) -> Vec<&Tensor> {
        Vec::new()
    }

    fn zero_grads(&mut self) {}
}

/// Flattens `(batch, …) → (batch, volume)` and restores the shape on the
/// backward pass.
#[derive(Debug, Clone, Default)]
pub struct Flatten {
    cached_dims: Option<Vec<usize>>,
}

impl Flatten {
    /// Creates the flattening layer.
    pub fn new() -> Self {
        Flatten { cached_dims: None }
    }
}

impl Layer for Flatten {
    fn name(&self) -> &'static str {
        "flatten"
    }

    fn forward(&mut self, input: &Tensor) -> Result<Tensor> {
        if input.rank() < 1 {
            return Err(TensorError::RankMismatch { expected: 2, got: 0 }.into());
        }
        let dims = input.dims().to_vec();
        let batch = dims[0];
        let volume: usize = dims[1..].iter().product();
        self.cached_dims = Some(dims);
        Ok(input.reshape(&[batch, volume])?)
    }

    fn backward(&mut self, grad_out: &Tensor) -> Result<Tensor> {
        let dims = self.cached_dims.as_ref().ok_or(NnError::NoForwardCache("flatten"))?;
        Ok(grad_out.reshape(dims)?)
    }

    fn params(&self) -> Vec<&Tensor> {
        Vec::new()
    }

    fn params_mut(&mut self) -> Vec<&mut Tensor> {
        Vec::new()
    }

    fn grads(&self) -> Vec<&Tensor> {
        Vec::new()
    }

    fn zero_grads(&mut self) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gap_averages_planes() {
        let mut l = GlobalAvgPool::new();
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 10.0, 20.0, 30.0, 40.0], &[1, 2, 2, 2])
            .unwrap();
        let y = l.forward(&x).unwrap();
        assert_eq!(y.dims(), &[1, 2]);
        assert_eq!(y.as_slice(), &[2.5, 25.0]);
    }

    #[test]
    fn gap_backward_distributes_evenly() {
        let mut l = GlobalAvgPool::new();
        l.forward(&Tensor::zeros(&[1, 1, 2, 2])).unwrap();
        let g = l.backward(&Tensor::from_vec(vec![4.0], &[1, 1]).unwrap()).unwrap();
        assert_eq!(g.as_slice(), &[1.0, 1.0, 1.0, 1.0]);
    }

    #[test]
    fn gap_rejects_bad_shapes() {
        let mut l = GlobalAvgPool::new();
        assert!(l.forward(&Tensor::zeros(&[2, 3])).is_err());
        assert!(matches!(l.backward(&Tensor::zeros(&[1, 1])), Err(NnError::NoForwardCache(_))));
        l.forward(&Tensor::zeros(&[1, 2, 2, 2])).unwrap();
        assert!(l.backward(&Tensor::zeros(&[1, 3])).is_err());
    }

    #[test]
    fn flatten_roundtrip() {
        let mut l = Flatten::new();
        let x = Tensor::linspace(0.0, 7.0, 8).reshape(&[2, 2, 2]).unwrap();
        let y = l.forward(&x).unwrap();
        assert_eq!(y.dims(), &[2, 4]);
        let g = l.backward(&y).unwrap();
        assert_eq!(g.dims(), &[2, 2, 2]);
        assert_eq!(g.as_slice(), x.as_slice());
    }

    #[test]
    fn flatten_backward_requires_forward() {
        let mut l = Flatten::new();
        assert!(matches!(l.backward(&Tensor::zeros(&[1, 4])), Err(NnError::NoForwardCache(_))));
    }

    #[test]
    fn pool_layers_have_no_params() {
        assert_eq!(GlobalAvgPool::new().num_params(), 0);
        assert_eq!(Flatten::new().num_params(), 0);
    }

    #[test]
    fn gap_gradient_matches_numerical() {
        crate::gradcheck::check_layer(Box::new(GlobalAvgPool::new()), &[2, 3, 2, 2], 5, 1e-2)
            .unwrap();
    }
}
