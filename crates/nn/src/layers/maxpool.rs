//! 2-D max pooling.

use fedms_tensor::{Tensor, TensorError};

use crate::{Layer, NnError, Result};

/// Non-overlapping `k×k` max pooling over `(batch, C, H, W)` inputs.
///
/// `H` and `W` must be divisible by `k`. The backward pass routes each
/// output gradient to the argmax position of its window (first maximum on
/// ties).
#[derive(Debug, Clone)]
pub struct MaxPool2d {
    k: usize,
    cached: Option<PoolCache>,
}

#[derive(Debug, Clone)]
struct PoolCache {
    in_dims: [usize; 4],
    argmax: Vec<usize>,
}

impl MaxPool2d {
    /// Creates a pooling layer with window size `k`.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::BadConfig`] for `k < 2`.
    pub fn new(k: usize) -> Result<Self> {
        if k < 2 {
            return Err(NnError::BadConfig("pool window must be at least 2".into()));
        }
        Ok(MaxPool2d { k, cached: None })
    }

    /// The window size.
    pub fn window(&self) -> usize {
        self.k
    }
}

impl Layer for MaxPool2d {
    fn name(&self) -> &'static str {
        "max_pool2d"
    }

    fn forward(&mut self, input: &Tensor) -> Result<Tensor> {
        if input.rank() != 4 {
            return Err(TensorError::RankMismatch { expected: 4, got: input.rank() }.into());
        }
        let [b, c, h, w] = [input.dims()[0], input.dims()[1], input.dims()[2], input.dims()[3]];
        if h % self.k != 0 || w % self.k != 0 {
            return Err(NnError::BadConfig(format!(
                "input {h}x{w} not divisible by pool window {}",
                self.k
            )));
        }
        let (oh, ow) = (h / self.k, w / self.k);
        let src = input.as_slice();
        let mut out = Tensor::zeros(&[b, c, oh, ow]);
        let mut argmax = vec![0usize; b * c * oh * ow];
        for plane_idx in 0..b * c {
            let plane = &src[plane_idx * h * w..(plane_idx + 1) * h * w];
            for oy in 0..oh {
                for ox in 0..ow {
                    let mut best = f32::NEG_INFINITY;
                    let mut best_pos = 0usize;
                    for dy in 0..self.k {
                        for dx in 0..self.k {
                            let pos = (oy * self.k + dy) * w + ox * self.k + dx;
                            if plane[pos] > best {
                                best = plane[pos];
                                best_pos = pos;
                            }
                        }
                    }
                    let oidx = plane_idx * oh * ow + oy * ow + ox;
                    out.as_mut_slice()[oidx] = best;
                    argmax[oidx] = plane_idx * h * w + best_pos;
                }
            }
        }
        self.cached = Some(PoolCache { in_dims: [b, c, h, w], argmax });
        Ok(out)
    }

    fn backward(&mut self, grad_out: &Tensor) -> Result<Tensor> {
        let cache = self.cached.as_ref().ok_or(NnError::NoForwardCache("max_pool2d"))?;
        let [b, c, h, w] = cache.in_dims;
        if grad_out.len() != cache.argmax.len() {
            return Err(TensorError::ShapeMismatch {
                left: grad_out.dims().to_vec(),
                right: vec![b, c, h / self.k, w / self.k],
            }
            .into());
        }
        let mut grad_in = Tensor::zeros(&[b, c, h, w]);
        for (oidx, &pos) in cache.argmax.iter().enumerate() {
            grad_in.as_mut_slice()[pos] += grad_out.as_slice()[oidx];
        }
        Ok(grad_in)
    }

    fn params(&self) -> Vec<&Tensor> {
        Vec::new()
    }

    fn params_mut(&mut self) -> Vec<&mut Tensor> {
        Vec::new()
    }

    fn grads(&self) -> Vec<&Tensor> {
        Vec::new()
    }

    fn zero_grads(&mut self) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validates_window() {
        assert!(MaxPool2d::new(1).is_err());
        assert_eq!(MaxPool2d::new(2).unwrap().window(), 2);
    }

    #[test]
    fn forward_picks_window_max() {
        let mut l = MaxPool2d::new(2).unwrap();
        let x = Tensor::from_vec(
            vec![
                1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0, 10.0, 11.0, 12.0, 13.0, 14.0, 15.0,
                16.0,
            ],
            &[1, 1, 4, 4],
        )
        .unwrap();
        let y = l.forward(&x).unwrap();
        assert_eq!(y.dims(), &[1, 1, 2, 2]);
        assert_eq!(y.as_slice(), &[6.0, 8.0, 14.0, 16.0]);
    }

    #[test]
    fn rejects_indivisible_input() {
        let mut l = MaxPool2d::new(2).unwrap();
        assert!(l.forward(&Tensor::zeros(&[1, 1, 3, 4])).is_err());
        assert!(l.forward(&Tensor::zeros(&[1, 4, 4])).is_err());
    }

    #[test]
    fn backward_routes_to_argmax() {
        let mut l = MaxPool2d::new(2).unwrap();
        let x = Tensor::from_vec(vec![1.0, 9.0, 2.0, 3.0], &[1, 1, 2, 2]).unwrap();
        l.forward(&x).unwrap();
        let g = l.backward(&Tensor::from_vec(vec![5.0], &[1, 1, 1, 1]).unwrap()).unwrap();
        assert_eq!(g.as_slice(), &[0.0, 5.0, 0.0, 0.0]);
    }

    #[test]
    fn backward_requires_forward() {
        let mut l = MaxPool2d::new(2).unwrap();
        assert!(matches!(
            l.backward(&Tensor::zeros(&[1, 1, 1, 1])),
            Err(NnError::NoForwardCache(_))
        ));
    }

    #[test]
    fn no_params() {
        assert_eq!(MaxPool2d::new(2).unwrap().num_params(), 0);
    }

    #[test]
    fn gradient_matches_numerical() {
        // Max pooling is piecewise linear; the kink detector skips window
        // ties, so the check passes on generic random inputs.
        crate::gradcheck::check_layer(
            Box::new(MaxPool2d::new(2).unwrap()),
            &[2, 2, 4, 4],
            41,
            2e-2,
        )
        .unwrap();
    }
}
