//! Convolutional layers (standard and depthwise), computed via im2col.

use fedms_tensor::pool::{BufferPool, PoolStats};
use fedms_tensor::{BackendHandle, Conv2dGeometry, Tensor, TensorError};
use rand::Rng;

use crate::{Layer, NnError, Result};

fn check_input_4d(input: &Tensor, c: usize, h: usize, w: usize) -> Result<usize> {
    if input.rank() != 4 {
        return Err(TensorError::RankMismatch { expected: 4, got: input.rank() }.into());
    }
    let d = input.dims();
    if d[1] != c || d[2] != h || d[3] != w {
        return Err(
            TensorError::ShapeMismatch { left: d.to_vec(), right: vec![d[0], c, h, w] }.into()
        );
    }
    Ok(d[0])
}

/// A standard 2-D convolution: `out_c` filters over all input channels.
///
/// * input: `(batch, in_c, H, W)`
/// * output: `(batch, out_c, out_h, out_w)`
/// * weight: `(out_c, in_c·k·k)` (flattened filter bank), bias: `(out_c)`
///
/// All scratch (column matrices, GEMM outputs) is routed through an internal
/// [`BufferPool`], so a steady-state training loop performs no per-step
/// heap allocation on the conv path.
#[derive(Debug)]
pub struct Conv2d {
    geom: Conv2dGeometry,
    out_channels: usize,
    weight: Tensor,
    bias: Tensor,
    grad_weight: Tensor,
    grad_bias: Tensor,
    cached_cols: Vec<Tensor>,
    backend: BackendHandle,
    scratch: BufferPool,
}

impl Clone for Conv2d {
    fn clone(&self) -> Self {
        // Scratch buffers are value-transparent: a clone starts with a
        // fresh, empty pool.
        Conv2d {
            geom: self.geom,
            out_channels: self.out_channels,
            weight: self.weight.clone(),
            bias: self.bias.clone(),
            grad_weight: self.grad_weight.clone(),
            grad_bias: self.grad_bias.clone(),
            cached_cols: self.cached_cols.clone(),
            backend: self.backend,
            scratch: BufferPool::new(),
        }
    }
}

impl Conv2d {
    /// Creates a convolution with Kaiming-uniform weights.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::BadConfig`] if `out_channels == 0`, or a tensor
    /// error if the geometry is infeasible.
    pub fn new<R: Rng + ?Sized>(
        geom: Conv2dGeometry,
        out_channels: usize,
        rng: &mut R,
    ) -> Result<Self> {
        if out_channels == 0 {
            return Err(NnError::BadConfig("out_channels must be positive".into()));
        }
        let fan_in = geom.col_rows();
        let bound = (6.0f32 / fan_in as f32).sqrt();
        Ok(Conv2d {
            geom,
            out_channels,
            weight: Tensor::rand_uniform(rng, &[out_channels, fan_in], -bound, bound),
            bias: Tensor::zeros(&[out_channels]),
            grad_weight: Tensor::zeros(&[out_channels, fan_in]),
            grad_bias: Tensor::zeros(&[out_channels]),
            cached_cols: Vec::new(),
            backend: BackendHandle::scalar(),
            scratch: BufferPool::new(),
        })
    }

    /// The convolution geometry.
    pub fn geometry(&self) -> &Conv2dGeometry {
        &self.geom
    }

    /// Number of output channels.
    pub fn out_channels(&self) -> usize {
        self.out_channels
    }

    /// Traffic counters of the internal scratch pool (test observability).
    pub fn scratch_stats(&self) -> PoolStats {
        self.scratch.stats()
    }
}

impl Layer for Conv2d {
    fn name(&self) -> &'static str {
        "conv2d"
    }

    fn forward(&mut self, input: &Tensor) -> Result<Tensor> {
        let g = self.geom;
        let batch = check_input_4d(input, g.in_channels, g.in_h, g.in_w)?;
        let vol = g.input_volume();
        let out_plane = g.out_h * g.out_w;
        let col_len = g.col_rows() * g.col_cols();
        let mut out = Tensor::zeros(&[batch, self.out_channels, g.out_h, g.out_w]);
        // Recycle last step's cached column matrices before building new ones.
        for cols in self.cached_cols.drain(..) {
            self.scratch.release_tensor(cols);
        }
        for s in 0..batch {
            let img = &input.as_slice()[s * vol..(s + 1) * vol];
            let mut cols = self.scratch.fetch_zeroed(col_len);
            self.backend.im2col(img, &g, &mut cols);
            let mut y = self.scratch.fetch_zeroed(self.out_channels * out_plane);
            self.backend.matmul(
                self.weight.as_slice(),
                &cols,
                &mut y,
                self.out_channels,
                g.col_rows(),
                out_plane,
            );
            let dst = &mut out.as_mut_slice()
                [s * self.out_channels * out_plane..(s + 1) * self.out_channels * out_plane];
            for oc in 0..self.out_channels {
                let b = self.bias.as_slice()[oc];
                for (d, &v) in dst[oc * out_plane..(oc + 1) * out_plane]
                    .iter_mut()
                    .zip(y[oc * out_plane..(oc + 1) * out_plane].iter())
                {
                    *d = v + b;
                }
            }
            self.scratch.release(y);
            self.cached_cols.push(Tensor::from_vec(cols, &[g.col_rows(), g.col_cols()])?);
        }
        Ok(out)
    }

    fn backward(&mut self, grad_out: &Tensor) -> Result<Tensor> {
        if self.cached_cols.is_empty() {
            return Err(NnError::NoForwardCache("conv2d"));
        }
        let g = self.geom;
        let batch =
            check_input_4d(grad_out, self.out_channels, g.out_h, g.out_w).map_err(|_| {
                NnError::Tensor(TensorError::ShapeMismatch {
                    left: grad_out.dims().to_vec(),
                    right: vec![self.cached_cols.len(), self.out_channels, g.out_h, g.out_w],
                })
            })?;
        if batch != self.cached_cols.len() {
            return Err(NnError::Tensor(TensorError::ShapeMismatch {
                left: grad_out.dims().to_vec(),
                right: vec![self.cached_cols.len(), self.out_channels, g.out_h, g.out_w],
            }));
        }
        let out_plane = g.out_h * g.out_w;
        let vol = g.input_volume();
        let mut grad_in = Tensor::zeros(&[batch, g.in_channels, g.in_h, g.in_w]);
        for s in 0..batch {
            let go = &grad_out.as_slice()
                [s * self.out_channels * out_plane..(s + 1) * self.out_channels * out_plane];
            let cols = self.cached_cols[s].as_slice();
            // dW += gradOut · colsᵀ
            let mut dw = self.scratch.fetch_zeroed(self.out_channels * g.col_rows());
            self.backend.matmul_transb(
                go,
                cols,
                &mut dw,
                self.out_channels,
                out_plane,
                g.col_rows(),
            );
            for (gw, &v) in self.grad_weight.as_mut_slice().iter_mut().zip(dw.iter()) {
                *gw += v;
            }
            self.scratch.release(dw);
            // db += row sums
            for oc in 0..self.out_channels {
                self.grad_bias.as_mut_slice()[oc] +=
                    go[oc * out_plane..(oc + 1) * out_plane].iter().sum::<f32>();
            }
            // dCols = Wᵀ · gradOut, then scatter back to image space.
            let mut dcols = self.scratch.fetch_zeroed(g.col_rows() * out_plane);
            self.backend.matmul_transa(
                self.weight.as_slice(),
                go,
                &mut dcols,
                g.col_rows(),
                self.out_channels,
                out_plane,
            );
            self.backend.col2im(&dcols, &g, &mut grad_in.as_mut_slice()[s * vol..(s + 1) * vol]);
            self.scratch.release(dcols);
        }
        Ok(grad_in)
    }

    fn params(&self) -> Vec<&Tensor> {
        vec![&self.weight, &self.bias]
    }

    fn params_mut(&mut self) -> Vec<&mut Tensor> {
        vec![&mut self.weight, &mut self.bias]
    }

    fn grads(&self) -> Vec<&Tensor> {
        vec![&self.grad_weight, &self.grad_bias]
    }

    fn zero_grads(&mut self) {
        self.grad_weight.scale(0.0);
        self.grad_bias.scale(0.0);
    }

    fn set_backend(&mut self, backend: BackendHandle) {
        self.backend = backend;
    }

    fn backend(&self) -> BackendHandle {
        self.backend
    }
}

/// A depthwise 2-D convolution: one `k×k` filter per channel, no cross-
/// channel mixing — the core of MobileNet's depthwise-separable blocks.
///
/// * input/output channels are equal
/// * weight: `(channels, k·k)`, bias: `(channels)`
#[derive(Debug)]
pub struct DepthwiseConv2d {
    geom: Conv2dGeometry,
    chan_geom: Conv2dGeometry,
    weight: Tensor,
    bias: Tensor,
    grad_weight: Tensor,
    grad_bias: Tensor,
    cached_cols: Vec<Vec<Tensor>>,
    backend: BackendHandle,
    scratch: BufferPool,
}

impl Clone for DepthwiseConv2d {
    fn clone(&self) -> Self {
        DepthwiseConv2d {
            geom: self.geom,
            chan_geom: self.chan_geom,
            weight: self.weight.clone(),
            bias: self.bias.clone(),
            grad_weight: self.grad_weight.clone(),
            grad_bias: self.grad_bias.clone(),
            cached_cols: self.cached_cols.clone(),
            backend: self.backend,
            scratch: BufferPool::new(),
        }
    }
}

impl DepthwiseConv2d {
    /// Creates a depthwise convolution with Kaiming-uniform weights.
    ///
    /// `geom.in_channels` is the (shared) channel count.
    ///
    /// # Errors
    ///
    /// Returns a tensor error if the single-channel geometry is infeasible.
    pub fn new<R: Rng + ?Sized>(geom: Conv2dGeometry, rng: &mut R) -> Result<Self> {
        let chan_geom =
            Conv2dGeometry::new(1, geom.in_h, geom.in_w, geom.kernel, geom.stride, geom.padding)?;
        let kk = geom.kernel * geom.kernel;
        let bound = (6.0f32 / kk as f32).sqrt();
        Ok(DepthwiseConv2d {
            geom,
            chan_geom,
            weight: Tensor::rand_uniform(rng, &[geom.in_channels, kk], -bound, bound),
            bias: Tensor::zeros(&[geom.in_channels]),
            grad_weight: Tensor::zeros(&[geom.in_channels, kk]),
            grad_bias: Tensor::zeros(&[geom.in_channels]),
            cached_cols: Vec::new(),
            backend: BackendHandle::scalar(),
            scratch: BufferPool::new(),
        })
    }

    /// The convolution geometry (channel count shared between in and out).
    pub fn geometry(&self) -> &Conv2dGeometry {
        &self.geom
    }

    /// Traffic counters of the internal scratch pool (test observability).
    pub fn scratch_stats(&self) -> PoolStats {
        self.scratch.stats()
    }
}

impl Layer for DepthwiseConv2d {
    fn name(&self) -> &'static str {
        "depthwise_conv2d"
    }

    fn forward(&mut self, input: &Tensor) -> Result<Tensor> {
        let g = self.geom;
        let batch = check_input_4d(input, g.in_channels, g.in_h, g.in_w)?;
        let plane = g.in_h * g.in_w;
        let out_plane = g.out_h * g.out_w;
        let kk = g.kernel * g.kernel;
        let mut out = Tensor::zeros(&[batch, g.in_channels, g.out_h, g.out_w]);
        for per_chan in self.cached_cols.drain(..) {
            for cols in per_chan {
                self.scratch.release_tensor(cols);
            }
        }
        for s in 0..batch {
            let mut per_chan = Vec::with_capacity(g.in_channels);
            for c in 0..g.in_channels {
                let off = (s * g.in_channels + c) * plane;
                let chan = &input.as_slice()[off..off + plane];
                let mut cols = self.scratch.fetch_zeroed(kk * out_plane); // (kk, out_plane)
                self.backend.im2col(chan, &self.chan_geom, &mut cols);
                let w = &self.weight.as_slice()[c * kk..(c + 1) * kk];
                let b = self.bias.as_slice()[c];
                let dst_off = (s * g.in_channels + c) * out_plane;
                let dst = &mut out.as_mut_slice()[dst_off..dst_off + out_plane];
                for (j, d) in dst.iter_mut().enumerate() {
                    let mut acc = b;
                    for (t, &wv) in w.iter().enumerate() {
                        acc += wv * cols[t * out_plane + j];
                    }
                    *d = acc;
                }
                per_chan.push(Tensor::from_vec(cols, &[kk, out_plane])?);
            }
            self.cached_cols.push(per_chan);
        }
        Ok(out)
    }

    fn backward(&mut self, grad_out: &Tensor) -> Result<Tensor> {
        if self.cached_cols.is_empty() {
            return Err(NnError::NoForwardCache("depthwise_conv2d"));
        }
        let g = self.geom;
        let batch = check_input_4d(grad_out, g.in_channels, g.out_h, g.out_w)?;
        if batch != self.cached_cols.len() {
            return Err(NnError::Tensor(TensorError::ShapeMismatch {
                left: grad_out.dims().to_vec(),
                right: vec![self.cached_cols.len(), g.in_channels, g.out_h, g.out_w],
            }));
        }
        let plane = g.in_h * g.in_w;
        let out_plane = g.out_h * g.out_w;
        let kk = g.kernel * g.kernel;
        let mut grad_in = Tensor::zeros(&[batch, g.in_channels, g.in_h, g.in_w]);
        for s in 0..batch {
            for c in 0..g.in_channels {
                let go_off = (s * g.in_channels + c) * out_plane;
                let go = &grad_out.as_slice()[go_off..go_off + out_plane];
                let cols = &self.cached_cols[s][c];
                // dw_c[t] += Σ_j go[j] * cols[t, j]
                for t in 0..kk {
                    let row = &cols.as_slice()[t * out_plane..(t + 1) * out_plane];
                    let mut acc = 0.0f32;
                    for (&gv, &cv) in go.iter().zip(row.iter()) {
                        acc += gv * cv;
                    }
                    self.grad_weight.as_mut_slice()[c * kk + t] += acc;
                }
                self.grad_bias.as_mut_slice()[c] += go.iter().sum::<f32>();
                // dcols[t, j] = w[t] * go[j], scatter via col2im.
                let w = &self.weight.as_slice()[c * kk..(c + 1) * kk];
                let mut dcols = self.scratch.fetch_zeroed(kk * out_plane);
                for (t, &wv) in w.iter().enumerate() {
                    for (j, &gv) in go.iter().enumerate() {
                        dcols[t * out_plane + j] = wv * gv;
                    }
                }
                let dst_off = (s * g.in_channels + c) * plane;
                self.backend.col2im(
                    &dcols,
                    &self.chan_geom,
                    &mut grad_in.as_mut_slice()[dst_off..dst_off + plane],
                );
                self.scratch.release(dcols);
            }
        }
        Ok(grad_in)
    }

    fn params(&self) -> Vec<&Tensor> {
        vec![&self.weight, &self.bias]
    }

    fn params_mut(&mut self) -> Vec<&mut Tensor> {
        vec![&mut self.weight, &mut self.bias]
    }

    fn grads(&self) -> Vec<&Tensor> {
        vec![&self.grad_weight, &self.grad_bias]
    }

    fn zero_grads(&mut self) {
        self.grad_weight.scale(0.0);
        self.grad_bias.scale(0.0);
    }

    fn set_backend(&mut self, backend: BackendHandle) {
        self.backend = backend;
    }

    fn backend(&self) -> BackendHandle {
        self.backend
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fedms_tensor::rng::rng_for;

    fn geom(c: usize, hw: usize, k: usize, s: usize, p: usize) -> Conv2dGeometry {
        Conv2dGeometry::new(c, hw, hw, k, s, p).unwrap()
    }

    #[test]
    fn conv_forward_shape() {
        let mut rng = rng_for(1, &[]);
        let mut l = Conv2d::new(geom(3, 8, 3, 1, 1), 4, &mut rng).unwrap();
        let x = Tensor::zeros(&[2, 3, 8, 8]);
        let y = l.forward(&x).unwrap();
        assert_eq!(y.dims(), &[2, 4, 8, 8]);
        assert_eq!(l.out_channels(), 4);
    }

    #[test]
    fn conv_rejects_wrong_input() {
        let mut rng = rng_for(1, &[]);
        let mut l = Conv2d::new(geom(3, 8, 3, 1, 1), 4, &mut rng).unwrap();
        assert!(l.forward(&Tensor::zeros(&[2, 3, 4, 4])).is_err());
        assert!(l.forward(&Tensor::zeros(&[3, 8, 8])).is_err());
        assert!(Conv2d::new(geom(3, 8, 3, 1, 1), 0, &mut rng).is_err());
    }

    #[test]
    fn conv_1x1_equals_linear_mix() {
        // A 1×1 conv is a per-pixel linear map across channels.
        let mut rng = rng_for(2, &[]);
        let mut l = Conv2d::new(geom(2, 2, 1, 1, 0), 1, &mut rng).unwrap();
        l.params_mut()[0].as_mut_slice().copy_from_slice(&[2.0, -1.0]);
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 10.0, 20.0, 30.0, 40.0], &[1, 2, 2, 2])
            .unwrap();
        let y = l.forward(&x).unwrap();
        assert_eq!(y.as_slice(), &[-8.0, -16.0, -24.0, -32.0]);
    }

    #[test]
    fn conv_bias_applied() {
        let mut rng = rng_for(3, &[]);
        let mut l = Conv2d::new(geom(1, 2, 1, 1, 0), 1, &mut rng).unwrap();
        l.params_mut()[0].as_mut_slice()[0] = 0.0;
        l.params_mut()[1].as_mut_slice()[0] = 3.5;
        let y = l.forward(&Tensor::zeros(&[1, 1, 2, 2])).unwrap();
        assert!(y.as_slice().iter().all(|&v| v == 3.5));
    }

    #[test]
    fn conv_backward_requires_forward() {
        let mut rng = rng_for(1, &[]);
        let mut l = Conv2d::new(geom(1, 4, 3, 1, 1), 2, &mut rng).unwrap();
        assert!(matches!(
            l.backward(&Tensor::zeros(&[1, 2, 4, 4])),
            Err(NnError::NoForwardCache(_))
        ));
    }

    #[test]
    fn conv_gradient_matches_numerical() {
        let mut rng = rng_for(5, &[]);
        let l = Conv2d::new(geom(2, 4, 3, 1, 1), 3, &mut rng).unwrap();
        crate::gradcheck::check_layer(Box::new(l), &[2, 2, 4, 4], 17, 3e-2).unwrap();
    }

    #[test]
    fn conv_strided_gradient_matches_numerical() {
        let mut rng = rng_for(6, &[]);
        let l = Conv2d::new(geom(1, 5, 3, 2, 1), 2, &mut rng).unwrap();
        crate::gradcheck::check_layer(Box::new(l), &[1, 1, 5, 5], 19, 3e-2).unwrap();
    }

    #[test]
    fn conv_scratch_pool_reaches_steady_state() {
        // Satellite: after warm-up, every training step must be served from
        // recycled buffers — reuses ≫ fresh allocations.
        let mut rng = rng_for(10, &[]);
        let mut l = Conv2d::new(geom(2, 4, 3, 1, 1), 3, &mut rng).unwrap();
        let x = Tensor::ones(&[2, 2, 4, 4]);
        let go = Tensor::ones(&[2, 3, 4, 4]);
        for _ in 0..20 {
            l.forward(&x).unwrap();
            l.backward(&go).unwrap();
        }
        let stats = l.scratch_stats();
        assert!(
            stats.reused >= 10 * stats.allocated,
            "conv scratch should be pool-served at steady state: {stats:?}"
        );
    }

    #[test]
    fn depthwise_forward_shape_and_independence() {
        let mut rng = rng_for(7, &[]);
        let mut l = DepthwiseConv2d::new(geom(2, 4, 3, 1, 1), &mut rng).unwrap();
        // Zero the second channel's filter: its output must be its bias (0).
        for v in &mut l.params_mut()[0].as_mut_slice()[9..18] {
            *v = 0.0;
        }
        let mut x = Tensor::zeros(&[1, 2, 4, 4]);
        for v in x.as_mut_slice().iter_mut() {
            *v = 1.0;
        }
        let y = l.forward(&x).unwrap();
        assert_eq!(y.dims(), &[1, 2, 4, 4]);
        assert!(y.as_slice()[16..32].iter().all(|&v| v == 0.0));
    }

    #[test]
    fn depthwise_gradient_matches_numerical() {
        let mut rng = rng_for(8, &[]);
        let l = DepthwiseConv2d::new(geom(3, 4, 3, 1, 1), &mut rng).unwrap();
        crate::gradcheck::check_layer(Box::new(l), &[2, 3, 4, 4], 23, 3e-2).unwrap();
    }

    #[test]
    fn depthwise_backward_requires_forward() {
        let mut rng = rng_for(9, &[]);
        let mut l = DepthwiseConv2d::new(geom(1, 4, 3, 1, 1), &mut rng).unwrap();
        assert!(matches!(
            l.backward(&Tensor::zeros(&[1, 1, 4, 4])),
            Err(NnError::NoForwardCache(_))
        ));
    }

    #[test]
    fn depthwise_scratch_pool_reaches_steady_state() {
        let mut rng = rng_for(11, &[]);
        let mut l = DepthwiseConv2d::new(geom(2, 4, 3, 1, 1), &mut rng).unwrap();
        let x = Tensor::ones(&[2, 2, 4, 4]);
        let go = Tensor::ones(&[2, 2, 4, 4]);
        for _ in 0..20 {
            l.forward(&x).unwrap();
            l.backward(&go).unwrap();
        }
        let stats = l.scratch_stats();
        assert!(
            stats.reused >= 10 * stats.allocated,
            "depthwise scratch should be pool-served at steady state: {stats:?}"
        );
    }
}
