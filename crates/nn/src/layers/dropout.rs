//! Inverted dropout.

use fedms_tensor::rng::rng_for;
use fedms_tensor::{Tensor, TensorError};
use rand::rngs::StdRng;
use rand::Rng;

use crate::{Layer, NnError, Result};

/// Inverted dropout: during training each activation is zeroed with
/// probability `p` and the survivors are scaled by `1/(1−p)`, so the
/// expected activation is unchanged and inference (eval mode) is a pure
/// identity.
///
/// The mask stream is seeded at construction; note that this makes a model
/// containing dropout *stateful* across forward calls (mask sequence), so
/// bit-exact checkpoint/resume of the federated engine applies to
/// dropout-free models — the harness models are dropout-free by default.
#[derive(Debug, Clone)]
pub struct Dropout {
    p: f32,
    training: bool,
    rng: StdRng,
    mask: Option<Tensor>,
}

impl Dropout {
    /// Creates a dropout layer with drop probability `p ∈ [0, 1)`, mask
    /// stream seeded by `seed`.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::BadConfig`] for `p` outside `[0, 1)`.
    pub fn new(p: f32, seed: u64) -> Result<Self> {
        if !(p.is_finite() && (0.0..1.0).contains(&p)) {
            return Err(NnError::BadConfig(format!("drop probability must be in [0, 1), got {p}")));
        }
        Ok(Dropout { p, training: true, rng: rng_for(seed, &[0x44_52_4F]), mask: None })
    }

    /// The drop probability.
    pub fn probability(&self) -> f32 {
        self.p
    }
}

impl Layer for Dropout {
    fn name(&self) -> &'static str {
        "dropout"
    }

    fn forward(&mut self, input: &Tensor) -> Result<Tensor> {
        if !self.training || self.p == 0.0 {
            self.mask = None;
            return Ok(input.clone());
        }
        let keep = 1.0 - self.p;
        let scale = 1.0 / keep;
        let mask =
            Tensor::from_fn(
                input.dims(),
                |_| {
                    if self.rng.gen::<f32>() < keep {
                        scale
                    } else {
                        0.0
                    }
                },
            );
        let out = input.mul(&mask)?;
        self.mask = Some(mask);
        Ok(out)
    }

    fn backward(&mut self, grad_out: &Tensor) -> Result<Tensor> {
        match &self.mask {
            None => {
                if self.training && self.p > 0.0 {
                    return Err(NnError::NoForwardCache("dropout"));
                }
                Ok(grad_out.clone())
            }
            Some(mask) => {
                if mask.shape() != grad_out.shape() {
                    return Err(TensorError::ShapeMismatch {
                        left: grad_out.dims().to_vec(),
                        right: mask.dims().to_vec(),
                    }
                    .into());
                }
                grad_out.mul(mask).map_err(Into::into)
            }
        }
    }

    fn params(&self) -> Vec<&Tensor> {
        Vec::new()
    }

    fn params_mut(&mut self) -> Vec<&mut Tensor> {
        Vec::new()
    }

    fn grads(&self) -> Vec<&Tensor> {
        Vec::new()
    }

    fn zero_grads(&mut self) {}

    fn set_training(&mut self, training: bool) {
        self.training = training;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validates_probability() {
        assert!(Dropout::new(-0.1, 0).is_err());
        assert!(Dropout::new(1.0, 0).is_err());
        assert!(Dropout::new(f32::NAN, 0).is_err());
        assert_eq!(Dropout::new(0.5, 0).unwrap().probability(), 0.5);
    }

    #[test]
    fn eval_mode_is_identity() {
        let mut d = Dropout::new(0.5, 1).unwrap();
        d.set_training(false);
        let x = Tensor::linspace(0.0, 1.0, 8);
        assert_eq!(d.forward(&x).unwrap(), x);
        assert_eq!(d.backward(&x).unwrap(), x);
    }

    #[test]
    fn zero_probability_is_identity_even_in_training() {
        let mut d = Dropout::new(0.0, 1).unwrap();
        let x = Tensor::ones(&[8]);
        assert_eq!(d.forward(&x).unwrap(), x);
    }

    #[test]
    fn training_preserves_expectation() {
        let mut d = Dropout::new(0.3, 2).unwrap();
        let x = Tensor::ones(&[20_000]);
        let y = d.forward(&x).unwrap();
        let mean = y.mean().unwrap();
        assert!((mean - 1.0).abs() < 0.02, "inverted dropout mean {mean}");
        // Either zero or the scale value.
        let scale = 1.0 / 0.7;
        assert!(y.as_slice().iter().all(|&v| v == 0.0 || (v - scale).abs() < 1e-6));
    }

    #[test]
    fn backward_uses_same_mask() {
        let mut d = Dropout::new(0.5, 3).unwrap();
        let x = Tensor::ones(&[64]);
        let y = d.forward(&x).unwrap();
        let g = d.backward(&Tensor::ones(&[64])).unwrap();
        // The gradient passes exactly where the forward did.
        for (yo, go) in y.as_slice().iter().zip(g.as_slice()) {
            assert_eq!(yo == &0.0, go == &0.0);
        }
        assert!(d.backward(&Tensor::ones(&[32])).is_err());
    }

    #[test]
    fn backward_before_forward_errors_in_training() {
        let mut d = Dropout::new(0.5, 4).unwrap();
        assert!(matches!(d.backward(&Tensor::ones(&[4])), Err(NnError::NoForwardCache(_))));
    }
}
