//! Concrete layer implementations.

mod activation;
mod avgpool;
mod batchnorm;
mod conv;
mod dropout;
mod linear;
mod maxpool;
mod pool;
mod sequential;

pub use activation::{LeakyReLU, ReLU, ReLU6, Sigmoid, Tanh};
pub use avgpool::AvgPool2d;
pub use batchnorm::BatchNorm2d;
pub use conv::{Conv2d, DepthwiseConv2d};
pub use dropout::Dropout;
pub use linear::Linear;
pub use maxpool::MaxPool2d;
pub use pool::{Flatten, GlobalAvgPool};
pub use sequential::Sequential;
