//! Fully connected layer.

use fedms_tensor::{BackendHandle, Tensor};
use rand::Rng;

use crate::{Layer, NnError, Result};

/// A fully connected (affine) layer: `y = x·Wᵀ + b`.
///
/// * input: `(batch, in_features)`
/// * output: `(batch, out_features)`
/// * weight: `(out_features, in_features)`, bias: `(out_features)`
///
/// Weights are initialised with Kaiming-uniform scaling
/// (`U(-√(6/in), √(6/in))`), biases with zero — the PyTorch default family,
/// matching the paper's training stack.
#[derive(Debug, Clone)]
pub struct Linear {
    in_features: usize,
    out_features: usize,
    weight: Tensor,
    bias: Tensor,
    grad_weight: Tensor,
    grad_bias: Tensor,
    cached_input: Option<Tensor>,
    backend: BackendHandle,
}

impl Linear {
    /// Creates a layer with Kaiming-uniform weights drawn from `rng`.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::BadConfig`] if either dimension is zero.
    pub fn new<R: Rng + ?Sized>(
        in_features: usize,
        out_features: usize,
        rng: &mut R,
    ) -> Result<Self> {
        if in_features == 0 || out_features == 0 {
            return Err(NnError::BadConfig("linear dimensions must be positive".into()));
        }
        let bound = (6.0f32 / in_features as f32).sqrt();
        let weight = Tensor::rand_uniform(rng, &[out_features, in_features], -bound, bound);
        Ok(Linear {
            in_features,
            out_features,
            weight,
            bias: Tensor::zeros(&[out_features]),
            grad_weight: Tensor::zeros(&[out_features, in_features]),
            grad_bias: Tensor::zeros(&[out_features]),
            cached_input: None,
            backend: BackendHandle::scalar(),
        })
    }

    /// Input width.
    pub fn in_features(&self) -> usize {
        self.in_features
    }

    /// Output width.
    pub fn out_features(&self) -> usize {
        self.out_features
    }
}

impl Layer for Linear {
    fn name(&self) -> &'static str {
        "linear"
    }

    fn forward(&mut self, input: &Tensor) -> Result<Tensor> {
        let mut out = input.matmul_transb_on(&self.weight, self.backend)?;
        let (batch, of) = (out.dims()[0], self.out_features);
        let bias = self.bias.as_slice();
        let data = out.as_mut_slice();
        for i in 0..batch {
            for (o, &b) in data[i * of..(i + 1) * of].iter_mut().zip(bias.iter()) {
                *o += b;
            }
        }
        self.cached_input = Some(input.clone());
        Ok(out)
    }

    fn backward(&mut self, grad_out: &Tensor) -> Result<Tensor> {
        let input = self.cached_input.as_ref().ok_or(NnError::NoForwardCache("linear"))?;
        // dW += gradOutᵀ · x   →  (out, batch)·(batch, in) = (out, in)
        let dw = grad_out.matmul_transa_on(input, self.backend)?;
        self.grad_weight.add_inplace(&dw)?;
        // db += column sums of gradOut
        let (batch, of) = (grad_out.dims()[0], self.out_features);
        let g = grad_out.as_slice();
        let db = self.grad_bias.as_mut_slice();
        for i in 0..batch {
            for (acc, &v) in db.iter_mut().zip(g[i * of..(i + 1) * of].iter()) {
                *acc += v;
            }
        }
        // dX = gradOut · W   →  (batch, out)·(out, in) = (batch, in)
        Ok(grad_out.matmul_on(&self.weight, self.backend)?)
    }

    fn params(&self) -> Vec<&Tensor> {
        vec![&self.weight, &self.bias]
    }

    fn params_mut(&mut self) -> Vec<&mut Tensor> {
        vec![&mut self.weight, &mut self.bias]
    }

    fn grads(&self) -> Vec<&Tensor> {
        vec![&self.grad_weight, &self.grad_bias]
    }

    fn zero_grads(&mut self) {
        self.grad_weight.scale(0.0);
        self.grad_bias.scale(0.0);
    }

    fn set_backend(&mut self, backend: BackendHandle) {
        self.backend = backend;
    }

    fn backend(&self) -> BackendHandle {
        self.backend
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fedms_tensor::rng::rng_for;

    #[test]
    fn rejects_zero_dims() {
        let mut rng = rng_for(1, &[]);
        assert!(Linear::new(0, 4, &mut rng).is_err());
        assert!(Linear::new(4, 0, &mut rng).is_err());
    }

    #[test]
    fn forward_shape_and_bias() {
        let mut rng = rng_for(1, &[]);
        let mut l = Linear::new(3, 2, &mut rng).unwrap();
        l.params_mut()[1].as_mut_slice().copy_from_slice(&[1.0, -1.0]);
        let x = Tensor::zeros(&[4, 3]);
        let y = l.forward(&x).unwrap();
        assert_eq!(y.dims(), &[4, 2]);
        // zero input → output equals bias in every row
        for i in 0..4 {
            assert_eq!(y.row(i).unwrap(), &[1.0, -1.0]);
        }
    }

    #[test]
    fn forward_known_weights() {
        let mut rng = rng_for(1, &[]);
        let mut l = Linear::new(2, 2, &mut rng).unwrap();
        l.params_mut()[0].as_mut_slice().copy_from_slice(&[1.0, 2.0, 3.0, 4.0]);
        let x = Tensor::from_vec(vec![1.0, 1.0], &[1, 2]).unwrap();
        let y = l.forward(&x).unwrap();
        assert_eq!(y.as_slice(), &[3.0, 7.0]);
    }

    #[test]
    fn backward_before_forward_errors() {
        let mut rng = rng_for(1, &[]);
        let mut l = Linear::new(2, 2, &mut rng).unwrap();
        assert!(matches!(l.backward(&Tensor::zeros(&[1, 2])), Err(NnError::NoForwardCache(_))));
    }

    #[test]
    fn backward_accumulates_and_zeroes() {
        let mut rng = rng_for(2, &[]);
        let mut l = Linear::new(2, 2, &mut rng).unwrap();
        let x = Tensor::ones(&[1, 2]);
        let g = Tensor::ones(&[1, 2]);
        l.forward(&x).unwrap();
        l.backward(&g).unwrap();
        let first: Vec<f32> = l.grads()[0].as_slice().to_vec();
        l.forward(&x).unwrap();
        l.backward(&g).unwrap();
        let second: Vec<f32> = l.grads()[0].as_slice().to_vec();
        for (a, b) in first.iter().zip(second.iter()) {
            assert!((b - 2.0 * a).abs() < 1e-6, "gradients should accumulate");
        }
        l.zero_grads();
        assert!(l.grads().iter().all(|g| g.as_slice().iter().all(|&v| v == 0.0)));
    }

    #[test]
    fn num_params_counts_weight_and_bias() {
        let mut rng = rng_for(3, &[]);
        let l = Linear::new(5, 7, &mut rng).unwrap();
        assert_eq!(l.num_params(), 5 * 7 + 7);
        assert_eq!(l.in_features(), 5);
        assert_eq!(l.out_features(), 7);
    }

    #[test]
    fn gradient_matches_numerical() {
        let mut rng = rng_for(4, &[]);
        let l = Linear::new(3, 2, &mut rng).unwrap();
        crate::gradcheck::check_layer(Box::new(l), &[2, 3], 11, 2e-2).unwrap();
    }
}
