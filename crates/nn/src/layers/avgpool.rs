//! 2-D average pooling.

use fedms_tensor::{Tensor, TensorError};

use crate::{Layer, NnError, Result};

/// Non-overlapping `k×k` average pooling over `(batch, C, H, W)` inputs.
///
/// `H` and `W` must be divisible by `k`. The backward pass spreads each
/// output gradient evenly over its window.
#[derive(Debug, Clone)]
pub struct AvgPool2d {
    k: usize,
    cached_dims: Option<[usize; 4]>,
}

impl AvgPool2d {
    /// Creates a pooling layer with window size `k`.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::BadConfig`] for `k < 2`.
    pub fn new(k: usize) -> Result<Self> {
        if k < 2 {
            return Err(NnError::BadConfig("pool window must be at least 2".into()));
        }
        Ok(AvgPool2d { k, cached_dims: None })
    }

    /// The window size.
    pub fn window(&self) -> usize {
        self.k
    }
}

impl Layer for AvgPool2d {
    fn name(&self) -> &'static str {
        "avg_pool2d"
    }

    fn forward(&mut self, input: &Tensor) -> Result<Tensor> {
        if input.rank() != 4 {
            return Err(TensorError::RankMismatch { expected: 4, got: input.rank() }.into());
        }
        let [b, c, h, w] = [input.dims()[0], input.dims()[1], input.dims()[2], input.dims()[3]];
        if h % self.k != 0 || w % self.k != 0 {
            return Err(NnError::BadConfig(format!(
                "input {h}x{w} not divisible by pool window {}",
                self.k
            )));
        }
        let (oh, ow) = (h / self.k, w / self.k);
        let inv = 1.0 / (self.k * self.k) as f32;
        let src = input.as_slice();
        let mut out = Tensor::zeros(&[b, c, oh, ow]);
        for plane_idx in 0..b * c {
            let plane = &src[plane_idx * h * w..(plane_idx + 1) * h * w];
            for oy in 0..oh {
                for ox in 0..ow {
                    let mut acc = 0.0f32;
                    for dy in 0..self.k {
                        for dx in 0..self.k {
                            acc += plane[(oy * self.k + dy) * w + ox * self.k + dx];
                        }
                    }
                    out.as_mut_slice()[plane_idx * oh * ow + oy * ow + ox] = acc * inv;
                }
            }
        }
        self.cached_dims = Some([b, c, h, w]);
        Ok(out)
    }

    fn backward(&mut self, grad_out: &Tensor) -> Result<Tensor> {
        let [b, c, h, w] = self.cached_dims.ok_or(NnError::NoForwardCache("avg_pool2d"))?;
        let (oh, ow) = (h / self.k, w / self.k);
        if grad_out.dims() != [b, c, oh, ow] {
            return Err(TensorError::ShapeMismatch {
                left: grad_out.dims().to_vec(),
                right: vec![b, c, oh, ow],
            }
            .into());
        }
        let inv = 1.0 / (self.k * self.k) as f32;
        let mut grad_in = Tensor::zeros(&[b, c, h, w]);
        for plane_idx in 0..b * c {
            for oy in 0..oh {
                for ox in 0..ow {
                    let g = grad_out.as_slice()[plane_idx * oh * ow + oy * ow + ox] * inv;
                    for dy in 0..self.k {
                        for dx in 0..self.k {
                            grad_in.as_mut_slice()
                                [plane_idx * h * w + (oy * self.k + dy) * w + ox * self.k + dx] +=
                                g;
                        }
                    }
                }
            }
        }
        Ok(grad_in)
    }

    fn params(&self) -> Vec<&Tensor> {
        Vec::new()
    }

    fn params_mut(&mut self) -> Vec<&mut Tensor> {
        Vec::new()
    }

    fn grads(&self) -> Vec<&Tensor> {
        Vec::new()
    }

    fn zero_grads(&mut self) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validates_window() {
        assert!(AvgPool2d::new(1).is_err());
        assert_eq!(AvgPool2d::new(2).unwrap().window(), 2);
    }

    #[test]
    fn forward_averages_windows() {
        let mut l = AvgPool2d::new(2).unwrap();
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[1, 1, 2, 2]).unwrap();
        let y = l.forward(&x).unwrap();
        assert_eq!(y.as_slice(), &[2.5]);
    }

    #[test]
    fn rejects_bad_shapes() {
        let mut l = AvgPool2d::new(2).unwrap();
        assert!(l.forward(&Tensor::zeros(&[1, 1, 3, 4])).is_err());
        assert!(l.forward(&Tensor::zeros(&[4, 4])).is_err());
        assert!(matches!(
            l.backward(&Tensor::zeros(&[1, 1, 1, 1])),
            Err(NnError::NoForwardCache(_))
        ));
    }

    #[test]
    fn backward_spreads_evenly() {
        let mut l = AvgPool2d::new(2).unwrap();
        l.forward(&Tensor::zeros(&[1, 1, 2, 2])).unwrap();
        let g = l.backward(&Tensor::from_vec(vec![8.0], &[1, 1, 1, 1]).unwrap()).unwrap();
        assert_eq!(g.as_slice(), &[2.0, 2.0, 2.0, 2.0]);
        assert!(l.backward(&Tensor::zeros(&[1, 1, 2, 2])).is_err());
    }

    #[test]
    fn gradient_matches_numerical() {
        crate::gradcheck::check_layer(
            Box::new(AvgPool2d::new(2).unwrap()),
            &[2, 2, 4, 4],
            71,
            1e-2,
        )
        .unwrap();
    }
}
