//! Softmax cross-entropy loss and classification metrics.

use fedms_tensor::{Tensor, TensorError};

use crate::{NnError, Result};

/// The value and gradient of a loss evaluated on a batch.
#[derive(Debug, Clone, PartialEq)]
pub struct LossOutput {
    /// Mean loss over the batch.
    pub loss: f32,
    /// Gradient of the mean loss with respect to the logits,
    /// shape `(batch, classes)`.
    pub grad_logits: Tensor,
}

/// Row-wise numerically stable softmax of a `(batch, classes)` logit matrix.
///
/// # Errors
///
/// Returns a rank error for non-matrices.
///
/// # Example
///
/// ```
/// use fedms_nn::softmax;
/// use fedms_tensor::Tensor;
///
/// let p = softmax(&Tensor::from_vec(vec![0.0, 0.0], &[1, 2])?)?;
/// assert!((p.as_slice()[0] - 0.5).abs() < 1e-6);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn softmax(logits: &Tensor) -> Result<Tensor> {
    if logits.rank() != 2 {
        return Err(TensorError::RankMismatch { expected: 2, got: logits.rank() }.into());
    }
    let (batch, classes) = (logits.dims()[0], logits.dims()[1]);
    let mut out = logits.clone();
    for i in 0..batch {
        let row = &mut out.as_mut_slice()[i * classes..(i + 1) * classes];
        let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let mut sum = 0.0f32;
        for v in row.iter_mut() {
            *v = (*v - max).exp();
            sum += *v;
        }
        for v in row.iter_mut() {
            *v /= sum;
        }
    }
    Ok(out)
}

/// Mean softmax cross-entropy of a `(batch, classes)` logit matrix against
/// integer labels, together with its gradient.
///
/// The gradient is the classic `softmax(logits) − one_hot(labels)` divided by
/// the batch size.
///
/// # Errors
///
/// Returns [`NnError::BadLabels`] if `labels.len()` differs from the batch
/// size or any label is out of range, and a rank error for non-matrices.
pub fn softmax_cross_entropy(logits: &Tensor, labels: &[usize]) -> Result<LossOutput> {
    if logits.rank() != 2 {
        return Err(TensorError::RankMismatch { expected: 2, got: logits.rank() }.into());
    }
    let (batch, classes) = (logits.dims()[0], logits.dims()[1]);
    if labels.len() != batch {
        return Err(NnError::BadLabels(format!("{} labels for batch of {batch}", labels.len())));
    }
    if batch == 0 {
        return Err(NnError::BadLabels("empty batch".into()));
    }
    if let Some(&bad) = labels.iter().find(|&&l| l >= classes) {
        return Err(NnError::BadLabels(format!("label {bad} out of range for {classes} classes")));
    }
    let mut probs = softmax(logits)?;
    let mut loss = 0.0f64;
    let inv_batch = 1.0 / batch as f32;
    for (i, &label) in labels.iter().enumerate() {
        let row = &mut probs.as_mut_slice()[i * classes..(i + 1) * classes];
        // Clamp to avoid log(0) on saturated predictions.
        loss -= (row[label].max(1e-12) as f64).ln();
        row[label] -= 1.0;
        for v in row.iter_mut() {
            *v *= inv_batch;
        }
    }
    Ok(LossOutput { loss: (loss / batch as f64) as f32, grad_logits: probs })
}

/// Fraction of rows whose argmax equals the label.
///
/// # Errors
///
/// Returns [`NnError::BadLabels`] on a length mismatch or empty batch, and a
/// rank error for non-matrices.
pub fn accuracy(logits: &Tensor, labels: &[usize]) -> Result<f32> {
    let preds = logits.argmax_rows()?;
    if preds.len() != labels.len() {
        return Err(NnError::BadLabels(format!(
            "{} labels for batch of {}",
            labels.len(),
            preds.len()
        )));
    }
    if labels.is_empty() {
        return Err(NnError::BadLabels("empty batch".into()));
    }
    let correct = preds.iter().zip(labels).filter(|(p, l)| p == l).count();
    Ok(correct as f32 / labels.len() as f32)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn softmax_rows_sum_to_one() {
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, -1.0, 0.0, 1.0], &[2, 3]).unwrap();
        let p = softmax(&t).unwrap();
        for i in 0..2 {
            let s: f32 = p.row(i).unwrap().iter().sum();
            assert!((s - 1.0).abs() < 1e-6);
        }
        assert!(p.as_slice().iter().all(|&v| v > 0.0));
    }

    #[test]
    fn softmax_stable_for_large_logits() {
        let t = Tensor::from_vec(vec![1000.0, 1001.0], &[1, 2]).unwrap();
        let p = softmax(&t).unwrap();
        assert!(p.is_finite());
        assert!(p.as_slice()[1] > p.as_slice()[0]);
    }

    #[test]
    fn cross_entropy_uniform_is_log_k() {
        let t = Tensor::zeros(&[4, 10]);
        let out = softmax_cross_entropy(&t, &[0, 3, 7, 9]).unwrap();
        assert!((out.loss - (10.0f32).ln()).abs() < 1e-5);
    }

    #[test]
    fn cross_entropy_confident_correct_is_small() {
        let mut t = Tensor::zeros(&[1, 3]);
        t.as_mut_slice()[1] = 20.0;
        let out = softmax_cross_entropy(&t, &[1]).unwrap();
        assert!(out.loss < 1e-4);
    }

    #[test]
    fn cross_entropy_gradient_rows_sum_to_zero() {
        let t = Tensor::from_vec(vec![1.0, -1.0, 0.5, 2.0, 0.0, -2.0], &[2, 3]).unwrap();
        let out = softmax_cross_entropy(&t, &[2, 0]).unwrap();
        for i in 0..2 {
            let s: f32 = out.grad_logits.row(i).unwrap().iter().sum();
            assert!(s.abs() < 1e-6, "softmax-CE gradient rows must sum to 0, got {s}");
        }
    }

    #[test]
    fn cross_entropy_gradient_matches_numerical() {
        let t = Tensor::from_vec(vec![0.3, -0.7, 1.2, 0.1, 0.9, -0.4], &[2, 3]).unwrap();
        let labels = [1usize, 2];
        let out = softmax_cross_entropy(&t, &labels).unwrap();
        let eps = 1e-3f32;
        for ci in 0..t.len() {
            let mut tp = t.clone();
            tp.as_mut_slice()[ci] += eps;
            let lp = softmax_cross_entropy(&tp, &labels).unwrap().loss;
            let mut tm = t.clone();
            tm.as_mut_slice()[ci] -= eps;
            let lm = softmax_cross_entropy(&tm, &labels).unwrap().loss;
            let numeric = (lp - lm) / (2.0 * eps);
            let analytic = out.grad_logits.as_slice()[ci];
            assert!(
                (numeric - analytic).abs() < 1e-3,
                "coord {ci}: analytic {analytic} vs numeric {numeric}"
            );
        }
    }

    #[test]
    fn cross_entropy_validates_labels() {
        let t = Tensor::zeros(&[2, 3]);
        assert!(softmax_cross_entropy(&t, &[0]).is_err());
        assert!(softmax_cross_entropy(&t, &[0, 3]).is_err());
        assert!(softmax_cross_entropy(&Tensor::zeros(&[0, 3]), &[]).is_err());
        assert!(softmax_cross_entropy(&Tensor::zeros(&[3]), &[0, 1, 2]).is_err());
    }

    #[test]
    fn accuracy_counts_correct() {
        let t = Tensor::from_vec(vec![0.9, 0.1, 0.2, 0.8, 0.6, 0.4], &[3, 2]).unwrap();
        assert_eq!(accuracy(&t, &[0, 1, 1]).unwrap(), 2.0 / 3.0);
        assert_eq!(accuracy(&t, &[0, 1, 0]).unwrap(), 1.0);
        assert!(accuracy(&t, &[0]).is_err());
        assert!(accuracy(&Tensor::zeros(&[0, 2]), &[]).is_err());
    }
}
