//! Error type for the neural-network substrate.

use std::fmt;

use fedms_tensor::TensorError;

/// Errors produced by model construction, forward/backward passes and
/// optimisation.
#[derive(Debug, Clone, PartialEq)]
pub enum NnError {
    /// An underlying tensor operation failed (shape/rank/index problems).
    Tensor(TensorError),
    /// `backward` was called before `forward`, so no activation is cached.
    NoForwardCache(&'static str),
    /// The supplied parameter vector has the wrong length for this model.
    ParamLengthMismatch {
        /// Length supplied.
        got: usize,
        /// Length the model requires.
        expected: usize,
    },
    /// Labels and batch size disagree, or a label is out of class range.
    BadLabels(String),
    /// A configuration value is invalid (e.g. empty layer widths).
    BadConfig(String),
}

impl fmt::Display for NnError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NnError::Tensor(e) => write!(f, "tensor error: {e}"),
            NnError::NoForwardCache(layer) => {
                write!(f, "backward called before forward on layer {layer}")
            }
            NnError::ParamLengthMismatch { got, expected } => {
                write!(f, "parameter vector length {got} does not match model size {expected}")
            }
            NnError::BadLabels(msg) => write!(f, "bad labels: {msg}"),
            NnError::BadConfig(msg) => write!(f, "bad configuration: {msg}"),
        }
    }
}

impl std::error::Error for NnError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            NnError::Tensor(e) => Some(e),
            _ => None,
        }
    }
}

impl From<TensorError> for NnError {
    fn from(e: TensorError) -> Self {
        NnError::Tensor(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        use std::error::Error;
        let e = NnError::from(TensorError::Empty("mean"));
        assert!(e.to_string().contains("tensor error"));
        assert!(e.source().is_some());
        assert!(NnError::NoForwardCache("linear").source().is_none());
        assert!(NnError::ParamLengthMismatch { got: 1, expected: 2 }
            .to_string()
            .contains("parameter vector"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<NnError>();
    }
}
