//! Mini-batch stochastic gradient descent with the paper's step-size family.

use fedms_tensor::BackendHandle;
use serde::{Deserialize, Serialize};

use crate::{Layer, NnError, Result};

/// Learning-rate schedule.
///
/// The Fed-MS convergence proof (Theorem 1) requires the decaying schedule
/// `η_t = φ/(γ+t)` with `φ = 2/μ` and `γ = max(8L/μ, E)`; that family is
/// [`LrSchedule::InverseDecay`]. The experiments in Section VI use the
/// standard near-constant rates of practical FL, covered by
/// [`LrSchedule::Constant`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum LrSchedule {
    /// Fixed learning rate.
    Constant(f32),
    /// `η_t = phi / (gamma + t)`, the schedule assumed by Theorem 1.
    InverseDecay {
        /// Numerator `φ` (the proof takes `φ = 2/μ`).
        phi: f32,
        /// Offset `γ` (the proof takes `γ = max(8L/μ, E)`).
        gamma: f32,
    },
    /// Staircase decay: `η_t = initial · factor^⌊t/every⌋`.
    StepDecay {
        /// Rate at `t = 0`.
        initial: f32,
        /// Multiplicative factor per stage (in `(0, 1]` for decay).
        factor: f32,
        /// Steps per stage.
        every: usize,
    },
    /// Cosine annealing from `initial` to `floor` over `horizon` steps,
    /// constant at `floor` afterwards.
    Cosine {
        /// Rate at `t = 0`.
        initial: f32,
        /// Final rate.
        floor: f32,
        /// Annealing horizon in steps.
        horizon: usize,
    },
}

impl LrSchedule {
    /// The learning rate at global step `t` (0-based).
    pub fn lr_at(&self, t: usize) -> f32 {
        match *self {
            LrSchedule::Constant(lr) => lr,
            LrSchedule::InverseDecay { phi, gamma } => phi / (gamma + t as f32),
            LrSchedule::StepDecay { initial, factor, every } => {
                initial * factor.powi((t / every.max(1)) as i32)
            }
            LrSchedule::Cosine { initial, floor, horizon } => {
                if horizon == 0 || t >= horizon {
                    floor
                } else {
                    let progress = t as f32 / horizon as f32;
                    floor
                        + 0.5 * (initial - floor) * (1.0 + (std::f32::consts::PI * progress).cos())
                }
            }
        }
    }

    /// Validates that the schedule produces positive, finite rates.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::BadConfig`] for non-positive or non-finite values.
    pub fn validate(&self) -> Result<()> {
        let probe = self.lr_at(0);
        if !(probe.is_finite() && probe > 0.0) {
            return Err(NnError::BadConfig(format!("learning rate at t=0 is {probe}")));
        }
        Ok(())
    }
}

/// Plain SGD: `p ← p − η_t · ∇p`, with optional global gradient-norm
/// clipping for stability under f32 arithmetic.
///
/// # Example
///
/// ```
/// use fedms_nn::{LrSchedule, Sgd};
///
/// let mut opt = Sgd::new(LrSchedule::Constant(0.1))?;
/// assert_eq!(opt.current_lr(), 0.1);
/// # Ok::<(), fedms_nn::NnError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Sgd {
    schedule: LrSchedule,
    step: usize,
    clip_norm: Option<f32>,
    momentum: f32,
    weight_decay: f32,
    velocity: Vec<Vec<f32>>,
    backend: BackendHandle,
}

impl Sgd {
    /// Creates an optimiser with the given schedule.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::BadConfig`] if the schedule is invalid.
    pub fn new(schedule: LrSchedule) -> Result<Self> {
        schedule.validate()?;
        Ok(Sgd {
            schedule,
            step: 0,
            clip_norm: None,
            momentum: 0.0,
            weight_decay: 0.0,
            velocity: Vec::new(),
            backend: BackendHandle::scalar(),
        })
    }

    /// Routes the parameter-update loop through `backend`.
    pub fn set_backend(&mut self, backend: BackendHandle) {
        self.backend = backend;
    }

    /// Enables heavy-ball momentum: `v ← m·v + ∇p`, `p ← p − η·v`.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::BadConfig`] unless `0 ≤ momentum < 1`.
    pub fn with_momentum(mut self, momentum: f32) -> Result<Self> {
        if !(momentum.is_finite() && (0.0..1.0).contains(&momentum)) {
            return Err(NnError::BadConfig(format!("momentum must be in [0, 1), got {momentum}")));
        }
        self.momentum = momentum;
        Ok(self)
    }

    /// Enables decoupled L2 weight decay: the effective gradient becomes
    /// `∇p + weight_decay · p`.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::BadConfig`] for negative or non-finite values.
    pub fn with_weight_decay(mut self, weight_decay: f32) -> Result<Self> {
        if !(weight_decay.is_finite() && weight_decay >= 0.0) {
            return Err(NnError::BadConfig(format!(
                "weight decay must be non-negative, got {weight_decay}"
            )));
        }
        self.weight_decay = weight_decay;
        Ok(self)
    }

    /// Enables global gradient-norm clipping at `max_norm`.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::BadConfig`] for a non-positive bound.
    pub fn with_clip_norm(mut self, max_norm: f32) -> Result<Self> {
        if !(max_norm.is_finite() && max_norm > 0.0) {
            return Err(NnError::BadConfig(format!("clip norm must be positive, got {max_norm}")));
        }
        self.clip_norm = Some(max_norm);
        Ok(self)
    }

    /// The learning rate that the *next* [`Sgd::step`] will use.
    pub fn current_lr(&self) -> f32 {
        self.schedule.lr_at(self.step)
    }

    /// Number of steps taken so far.
    pub fn steps_taken(&self) -> usize {
        self.step
    }

    /// Rewinds or advances the internal step counter (used when a client
    /// resumes from a filtered global model at a given global step).
    pub fn set_step(&mut self, step: usize) {
        self.step = step;
    }

    /// Applies one SGD update to every parameter of `model` from its
    /// accumulated gradients, then advances the step counter.
    ///
    /// Does **not** zero the gradients; callers zero before accumulating.
    ///
    /// # Errors
    ///
    /// Currently infallible for well-formed layers; reserved for future
    /// schedule validation.
    pub fn step<M: Layer + ?Sized>(&mut self, model: &mut M) -> Result<()> {
        let lr = self.current_lr();
        let scale = match self.clip_norm {
            Some(max_norm) => {
                let total: f32 = model.grads().iter().map(|g| g.norm_l2_sq()).sum::<f32>().sqrt();
                if total > max_norm {
                    max_norm / total
                } else {
                    1.0
                }
            }
            None => 1.0,
        };
        let grads: Vec<Vec<f32>> = model.grads().iter().map(|g| g.as_slice().to_vec()).collect();
        if self.momentum > 0.0 && self.velocity.len() != grads.len() {
            self.velocity = grads.iter().map(|g| vec![0.0f32; g.len()]).collect();
        }
        for (pi, (param, grad)) in model.params_mut().into_iter().zip(grads.iter()).enumerate() {
            let velocity =
                if self.momentum > 0.0 { Some(self.velocity[pi].as_mut_slice()) } else { None };
            self.backend.sgd_update(
                param.as_mut_slice(),
                grad,
                lr,
                scale,
                self.weight_decay,
                self.momentum,
                velocity,
            );
        }
        self.step += 1;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Linear;
    use fedms_tensor::rng::rng_for;
    use fedms_tensor::Tensor;

    #[test]
    fn schedules_evaluate() {
        assert_eq!(LrSchedule::Constant(0.5).lr_at(100), 0.5);
        let d = LrSchedule::InverseDecay { phi: 2.0, gamma: 8.0 };
        assert_eq!(d.lr_at(0), 0.25);
        assert_eq!(d.lr_at(2), 0.2);
    }

    #[test]
    fn inverse_decay_is_non_increasing_and_halves_slowly() {
        // The proof needs η_t ≤ 2·η_{t+E}; verify for E = 3 over a horizon.
        let d = LrSchedule::InverseDecay { phi: 2.0, gamma: 8.0 };
        for t in 0..100 {
            assert!(d.lr_at(t + 1) <= d.lr_at(t));
            assert!(d.lr_at(t) <= 2.0 * d.lr_at(t + 3));
        }
    }

    #[test]
    fn step_decay_staircase() {
        let s = LrSchedule::StepDecay { initial: 1.0, factor: 0.5, every: 10 };
        assert_eq!(s.lr_at(0), 1.0);
        assert_eq!(s.lr_at(9), 1.0);
        assert_eq!(s.lr_at(10), 0.5);
        assert_eq!(s.lr_at(25), 0.25);
        assert!(s.validate().is_ok());
    }

    #[test]
    fn cosine_anneals_to_floor() {
        let s = LrSchedule::Cosine { initial: 1.0, floor: 0.1, horizon: 100 };
        assert!((s.lr_at(0) - 1.0).abs() < 1e-6);
        assert!((s.lr_at(100) - 0.1).abs() < 1e-6);
        assert!((s.lr_at(1000) - 0.1).abs() < 1e-6);
        let mid = s.lr_at(50);
        assert!((mid - 0.55).abs() < 1e-3, "halfway = mean of endpoints, got {mid}");
        for t in 0..100 {
            assert!(s.lr_at(t + 1) <= s.lr_at(t) + 1e-6);
        }
        // Degenerate horizon is the floor everywhere.
        let flat = LrSchedule::Cosine { initial: 1.0, floor: 0.2, horizon: 0 };
        assert_eq!(flat.lr_at(0), 0.2);
    }

    #[test]
    fn validation_rejects_bad_rates() {
        assert!(LrSchedule::Constant(0.0).validate().is_err());
        assert!(LrSchedule::Constant(-1.0).validate().is_err());
        assert!(LrSchedule::Constant(f32::NAN).validate().is_err());
        assert!(Sgd::new(LrSchedule::Constant(0.0)).is_err());
        assert!(Sgd::new(LrSchedule::Constant(0.1)).unwrap().with_clip_norm(-1.0).is_err());
    }

    #[test]
    fn step_moves_against_gradient() {
        let mut rng = rng_for(1, &[]);
        let mut l = Linear::new(2, 1, &mut rng).unwrap();
        let before = l.params()[0].as_slice().to_vec();
        let x = Tensor::ones(&[1, 2]);
        let y = l.forward(&x).unwrap();
        l.zero_grads();
        l.backward(&y.map(|_| 1.0)).unwrap(); // d loss/d out = 1 → dW = x = 1
        let mut opt = Sgd::new(LrSchedule::Constant(0.1)).unwrap();
        opt.step(&mut l).unwrap();
        let after = l.params()[0].as_slice().to_vec();
        for (b, a) in before.iter().zip(after.iter()) {
            assert!((b - a - 0.1).abs() < 1e-6, "each weight should decrease by lr*1");
        }
        assert_eq!(opt.steps_taken(), 1);
    }

    #[test]
    fn step_counter_advances_schedule() {
        let mut opt = Sgd::new(LrSchedule::InverseDecay { phi: 1.0, gamma: 1.0 }).unwrap();
        assert_eq!(opt.current_lr(), 1.0);
        opt.set_step(4);
        assert_eq!(opt.current_lr(), 0.2);
    }

    #[test]
    fn momentum_accumulates_velocity() {
        // Constant unit gradient: after k steps with momentum m the update
        // is lr·(1 + m + m² + …) per step — strictly larger than plain SGD.
        let mut rng = rng_for(3, &[]);
        let mut plain_model = Linear::new(1, 1, &mut rng).unwrap();
        let mut momentum_model = plain_model.clone();
        let mut plain = Sgd::new(LrSchedule::Constant(0.1)).unwrap();
        let mut with_m = Sgd::new(LrSchedule::Constant(0.1)).unwrap().with_momentum(0.9).unwrap();
        let x = Tensor::ones(&[1, 1]);
        for _ in 0..5 {
            for (model, opt) in [(&mut plain_model, &mut plain), (&mut momentum_model, &mut with_m)]
            {
                model.forward(&x).unwrap();
                model.zero_grads();
                model.backward(&Tensor::ones(&[1, 1])).unwrap();
                opt.step(model).unwrap();
            }
        }
        let moved_plain = plain_model.params()[0].as_slice()[0];
        let moved_momentum = momentum_model.params()[0].as_slice()[0];
        assert!(
            moved_momentum < moved_plain,
            "momentum should have travelled further downhill: {moved_momentum} vs {moved_plain}"
        );
    }

    #[test]
    fn weight_decay_shrinks_parameters() {
        let mut rng = rng_for(4, &[]);
        let mut l = Linear::new(2, 2, &mut rng).unwrap();
        let before = l.params()[0].norm_l2();
        let mut opt = Sgd::new(LrSchedule::Constant(0.1)).unwrap().with_weight_decay(0.5).unwrap();
        // Zero gradients: the only force is decay.
        l.zero_grads();
        for _ in 0..10 {
            opt.step(&mut l).unwrap();
        }
        let after = l.params()[0].norm_l2();
        assert!(after < before * 0.7, "decay should shrink weights: {before} → {after}");
    }

    #[test]
    fn momentum_and_decay_validation() {
        let base = || Sgd::new(LrSchedule::Constant(0.1)).unwrap();
        assert!(base().with_momentum(1.0).is_err());
        assert!(base().with_momentum(-0.1).is_err());
        assert!(base().with_momentum(0.9).is_ok());
        assert!(base().with_weight_decay(-0.1).is_err());
        assert!(base().with_weight_decay(f32::NAN).is_err());
        assert!(base().with_weight_decay(1e-4).is_ok());
    }

    #[test]
    fn clipping_bounds_update_magnitude() {
        let mut rng = rng_for(2, &[]);
        let mut l = Linear::new(4, 4, &mut rng).unwrap();
        let before: Vec<f32> = l.params()[0].as_slice().to_vec();
        let x = Tensor::full(&[1, 4], 100.0);
        let y = l.forward(&x).unwrap();
        l.zero_grads();
        l.backward(&y).unwrap();
        let mut opt = Sgd::new(LrSchedule::Constant(1.0)).unwrap().with_clip_norm(0.5).unwrap();
        opt.step(&mut l).unwrap();
        let moved: f32 = l.params()[0]
            .as_slice()
            .iter()
            .zip(before.iter())
            .map(|(a, b)| (a - b).powi(2))
            .sum::<f32>()
            .sqrt();
        assert!(moved <= 0.5 + 1e-4, "clipped update moved {moved}");
    }
}
