//! Ready-made model architectures: [`Mlp`] and [`MobileNetNano`].

use fedms_tensor::rng::rng_for;
use fedms_tensor::{BackendHandle, Conv2dGeometry, Tensor};
use serde::{Deserialize, Serialize};

use crate::{
    Conv2d, DepthwiseConv2d, GlobalAvgPool, Layer, Linear, NnError, ReLU, ReLU6, Result, Sequential,
};

/// A multi-layer perceptron: `Linear → ReLU → … → Linear`.
///
/// This is the fast model used by the experiment harness (the paper's
/// attack/defence dynamics act on the flat parameter vector and are
/// architecture-agnostic; see DESIGN.md).
///
/// # Example
///
/// ```
/// use fedms_nn::{Layer, Mlp};
///
/// let net = Mlp::new(&[192, 64, 10], 0)?;
/// assert!(net.num_params() > 10_000);
/// # Ok::<(), fedms_nn::NnError>(())
/// ```
#[derive(Debug)]
pub struct Mlp {
    seq: Sequential,
    widths: Vec<usize>,
}

impl Mlp {
    /// Builds an MLP with the given layer widths (input first, classes
    /// last), deterministically initialised from `seed`.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::BadConfig`] if fewer than two widths are given or
    /// any width is zero.
    pub fn new(widths: &[usize], seed: u64) -> Result<Self> {
        if widths.len() < 2 {
            return Err(NnError::BadConfig("mlp needs at least input and output widths".into()));
        }
        if widths.contains(&0) {
            return Err(NnError::BadConfig("mlp widths must be positive".into()));
        }
        let mut rng = rng_for(seed, &[0x4D4C50]); // "MLP"
        let mut seq = Sequential::new();
        for (i, pair) in widths.windows(2).enumerate() {
            seq.push(Box::new(Linear::new(pair[0], pair[1], &mut rng)?));
            if i + 2 < widths.len() {
                seq.push(Box::new(ReLU::new()));
            }
        }
        Ok(Mlp { seq, widths: widths.to_vec() })
    }

    /// The layer widths this MLP was built with.
    pub fn widths(&self) -> &[usize] {
        &self.widths
    }
}

impl Layer for Mlp {
    fn name(&self) -> &'static str {
        "mlp"
    }

    fn set_training(&mut self, training: bool) {
        self.seq.set_training(training)
    }

    fn forward(&mut self, input: &Tensor) -> Result<Tensor> {
        self.seq.forward(input)
    }

    fn backward(&mut self, grad_out: &Tensor) -> Result<Tensor> {
        self.seq.backward(grad_out)
    }

    fn params(&self) -> Vec<&Tensor> {
        self.seq.params()
    }

    fn params_mut(&mut self) -> Vec<&mut Tensor> {
        self.seq.params_mut()
    }

    fn grads(&self) -> Vec<&Tensor> {
        self.seq.grads()
    }

    fn zero_grads(&mut self) {
        self.seq.zero_grads()
    }

    fn set_backend(&mut self, backend: BackendHandle) {
        self.seq.set_backend(backend)
    }

    fn backend(&self) -> BackendHandle {
        self.seq.backend()
    }
}

/// One MobileNetV2 inverted-residual block: pointwise expansion → ReLU6 →
/// depthwise 3×3 → ReLU6 → pointwise projection, with a residual connection
/// when the input and output shapes agree (stride 1, equal channels).
struct InvertedResidual {
    body: Sequential,
    use_residual: bool,
    cached_input: Option<Tensor>,
}

impl InvertedResidual {
    fn new(
        in_channels: usize,
        out_channels: usize,
        expansion: usize,
        h: usize,
        w: usize,
        stride: usize,
        rng: &mut rand::rngs::StdRng,
    ) -> Result<(Self, usize, usize)> {
        let hidden = in_channels * expansion;
        let expand_geom = Conv2dGeometry::new(in_channels, h, w, 1, 1, 0)?;
        let dw_geom = Conv2dGeometry::new(hidden, h, w, 3, stride, 1)?;
        let (oh, ow) = (dw_geom.out_h, dw_geom.out_w);
        let project_geom = Conv2dGeometry::new(hidden, oh, ow, 1, 1, 0)?;
        let body = Sequential::new()
            .with(Conv2d::new(expand_geom, hidden, rng)?)
            .with(ReLU6::new())
            .with(DepthwiseConv2d::new(dw_geom, rng)?)
            .with(ReLU6::new())
            .with(Conv2d::new(project_geom, out_channels, rng)?);
        let use_residual = stride == 1 && in_channels == out_channels;
        Ok((InvertedResidual { body, use_residual, cached_input: None }, oh, ow))
    }
}

impl Layer for InvertedResidual {
    fn name(&self) -> &'static str {
        "inverted_residual"
    }

    fn set_training(&mut self, training: bool) {
        self.body.set_training(training)
    }

    fn forward(&mut self, input: &Tensor) -> Result<Tensor> {
        let out = self.body.forward(input)?;
        if self.use_residual {
            self.cached_input = Some(input.clone());
            Ok(out.add(input)?)
        } else {
            Ok(out)
        }
    }

    fn backward(&mut self, grad_out: &Tensor) -> Result<Tensor> {
        let mut grad_in = self.body.backward(grad_out)?;
        if self.use_residual {
            // The skip path passes the output gradient straight through.
            self.cached_input.as_ref().ok_or(NnError::NoForwardCache("inverted_residual"))?;
            grad_in.add_inplace(grad_out)?;
        }
        Ok(grad_in)
    }

    fn params(&self) -> Vec<&Tensor> {
        self.body.params()
    }

    fn params_mut(&mut self) -> Vec<&mut Tensor> {
        self.body.params_mut()
    }

    fn grads(&self) -> Vec<&Tensor> {
        self.body.grads()
    }

    fn zero_grads(&mut self) {
        self.body.zero_grads()
    }

    fn set_backend(&mut self, backend: BackendHandle) {
        self.body.set_backend(backend)
    }

    fn backend(&self) -> BackendHandle {
        self.body.backend()
    }
}

/// Configuration for [`MobileNetNano`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MobileNetNanoConfig {
    /// Input channels (3 for RGB-like synthetic images).
    pub in_channels: usize,
    /// Input height.
    pub in_h: usize,
    /// Input width.
    pub in_w: usize,
    /// Channels produced by the stem convolution.
    pub stem_channels: usize,
    /// Inverted-residual blocks as `(expansion, out_channels, stride)`.
    pub blocks: Vec<(usize, usize, usize)>,
    /// Number of output classes.
    pub num_classes: usize,
}

impl Default for MobileNetNanoConfig {
    /// The configuration used by the experiment harness: 3×8×8 inputs, an
    /// 8-channel stem, three inverted-residual blocks and a 10-class head.
    fn default() -> Self {
        MobileNetNanoConfig {
            in_channels: 3,
            in_h: 8,
            in_w: 8,
            stem_channels: 8,
            blocks: vec![(2, 8, 1), (2, 16, 2), (2, 16, 1)],
            num_classes: 10,
        }
    }
}

/// A miniature MobileNetV2 for the synthetic vision task.
///
/// Architecturally faithful to the paper's training model — stem convolution,
/// a stack of inverted-residual (expand → depthwise → project) blocks with
/// ReLU6, global average pooling and a linear classifier — scaled down to a
/// few thousand parameters so that a full 50-client federated run completes
/// in CI time.
pub struct MobileNetNano {
    seq: Sequential,
    config: MobileNetNanoConfig,
}

impl std::fmt::Debug for MobileNetNano {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MobileNetNano").field("config", &self.config).finish()
    }
}

impl MobileNetNano {
    /// Builds the network from `config`, deterministically initialised from
    /// `seed`.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::BadConfig`] for zero dimensions or an empty block
    /// list, or a tensor error if a block's geometry is infeasible.
    pub fn new(config: MobileNetNanoConfig, seed: u64) -> Result<Self> {
        if config.num_classes == 0 || config.stem_channels == 0 || config.in_channels == 0 {
            return Err(NnError::BadConfig("mobilenet dimensions must be positive".into()));
        }
        if config.blocks.is_empty() {
            return Err(NnError::BadConfig("mobilenet needs at least one block".into()));
        }
        if config.blocks.iter().any(|&(e, c, s)| e == 0 || c == 0 || s == 0) {
            return Err(NnError::BadConfig("block parameters must be positive".into()));
        }
        let mut rng = rng_for(seed, &[0x4D4E32]); // "MN2"
        let stem_geom = Conv2dGeometry::new(config.in_channels, config.in_h, config.in_w, 3, 1, 1)?;
        let mut seq = Sequential::new()
            .with(Conv2d::new(stem_geom, config.stem_channels, &mut rng)?)
            .with(ReLU6::new());
        let (mut c, mut h, mut w) = (config.stem_channels, stem_geom.out_h, stem_geom.out_w);
        for &(expansion, out_c, stride) in &config.blocks {
            let (block, oh, ow) =
                InvertedResidual::new(c, out_c, expansion, h, w, stride, &mut rng)?;
            seq.push(Box::new(block));
            c = out_c;
            h = oh;
            w = ow;
        }
        seq.push(Box::new(GlobalAvgPool::new()));
        seq.push(Box::new(Linear::new(c, config.num_classes, &mut rng)?));
        Ok(MobileNetNano { seq, config })
    }

    /// The configuration this network was built with.
    pub fn config(&self) -> &MobileNetNanoConfig {
        &self.config
    }
}

impl Layer for MobileNetNano {
    fn name(&self) -> &'static str {
        "mobilenet_nano"
    }

    fn set_training(&mut self, training: bool) {
        self.seq.set_training(training)
    }

    fn forward(&mut self, input: &Tensor) -> Result<Tensor> {
        self.seq.forward(input)
    }

    fn backward(&mut self, grad_out: &Tensor) -> Result<Tensor> {
        self.seq.backward(grad_out)
    }

    fn params(&self) -> Vec<&Tensor> {
        self.seq.params()
    }

    fn params_mut(&mut self) -> Vec<&mut Tensor> {
        self.seq.params_mut()
    }

    fn grads(&self) -> Vec<&Tensor> {
        self.seq.grads()
    }

    fn zero_grads(&mut self) {
        self.seq.zero_grads()
    }

    fn set_backend(&mut self, backend: BackendHandle) {
        self.seq.set_backend(backend)
    }

    fn backend(&self) -> BackendHandle {
        self.seq.backend()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{LrSchedule, NeuralNet, Sgd};

    #[test]
    fn mlp_validates_widths() {
        assert!(Mlp::new(&[4], 0).is_err());
        assert!(Mlp::new(&[4, 0, 2], 0).is_err());
        assert!(Mlp::new(&[4, 2], 0).is_ok());
    }

    #[test]
    fn mlp_deterministic_per_seed() {
        let a = Mlp::new(&[4, 8, 3], 5).unwrap();
        let b = Mlp::new(&[4, 8, 3], 5).unwrap();
        let c = Mlp::new(&[4, 8, 3], 6).unwrap();
        assert_eq!(a.param_vector(), b.param_vector());
        assert_ne!(a.param_vector(), c.param_vector());
        assert_eq!(a.widths(), &[4, 8, 3]);
    }

    #[test]
    fn mlp_forward_shape() {
        let mut m = Mlp::new(&[6, 10, 4], 1).unwrap();
        let y = m.forward(&Tensor::zeros(&[3, 6])).unwrap();
        assert_eq!(y.dims(), &[3, 4]);
    }

    #[test]
    fn mlp_gradient_matches_numerical() {
        let m = Mlp::new(&[4, 6, 3], 2).unwrap();
        crate::gradcheck::check_layer(Box::new(m), &[2, 4], 31, 2e-2).unwrap();
    }

    #[test]
    fn mobilenet_validates_config() {
        let mut cfg = MobileNetNanoConfig::default();
        cfg.blocks.clear();
        assert!(MobileNetNano::new(cfg, 0).is_err());
        let cfg = MobileNetNanoConfig { num_classes: 0, ..Default::default() };
        assert!(MobileNetNano::new(cfg, 0).is_err());
        let cfg = MobileNetNanoConfig { blocks: vec![(0, 8, 1)], ..Default::default() };
        assert!(MobileNetNano::new(cfg, 0).is_err());
    }

    #[test]
    fn mobilenet_forward_shape_and_param_count() {
        let mut m = MobileNetNano::new(MobileNetNanoConfig::default(), 0).unwrap();
        let y = m.forward(&Tensor::zeros(&[2, 3, 8, 8])).unwrap();
        assert_eq!(y.dims(), &[2, 10]);
        assert!(m.num_params() > 1000, "nano should still be non-trivial: {}", m.num_params());
    }

    #[test]
    fn mobilenet_deterministic_per_seed() {
        let a = MobileNetNano::new(MobileNetNanoConfig::default(), 3).unwrap();
        let b = MobileNetNano::new(MobileNetNanoConfig::default(), 3).unwrap();
        assert_eq!(a.param_vector(), b.param_vector());
    }

    #[test]
    fn mobilenet_gradient_matches_numerical() {
        let cfg = MobileNetNanoConfig {
            in_channels: 2,
            in_h: 4,
            in_w: 4,
            stem_channels: 4,
            blocks: vec![(2, 4, 1)],
            num_classes: 3,
        };
        let m = MobileNetNano::new(cfg, 4).unwrap();
        crate::gradcheck::check_layer(Box::new(m), &[2, 2, 4, 4], 37, 4e-2).unwrap();
    }

    #[test]
    fn inverted_residual_skip_path() {
        // With the projection conv zeroed the block must act as identity
        // (residual) — verifies the skip wiring.
        let mut rng = fedms_tensor::rng::rng_for(5, &[]);
        let (mut block, _, _) = InvertedResidual::new(2, 2, 2, 4, 4, 1, &mut rng).unwrap();
        let nparams = block.params().len();
        // Projection conv is the last parameterised layer: weight at index
        // nparams-2, bias at nparams-1.
        for v in block.params_mut()[nparams - 2].as_mut_slice().iter_mut() {
            *v = 0.0;
        }
        let x = Tensor::randn(&mut rng, &[1, 2, 4, 4], 0.0, 1.0);
        let y = block.forward(&x).unwrap();
        assert_eq!(y, x);
    }

    #[test]
    fn mobilenet_trains_on_trivial_task() {
        // One-batch sanity check: loss decreases on a tiny task.
        let cfg = MobileNetNanoConfig {
            in_channels: 1,
            in_h: 4,
            in_w: 4,
            stem_channels: 4,
            blocks: vec![(2, 4, 1)],
            num_classes: 2,
        };
        let mut m = MobileNetNano::new(cfg, 6).unwrap();
        let mut rng = fedms_tensor::rng::rng_for(6, &[1]);
        let mut x = Tensor::randn(&mut rng, &[8, 1, 4, 4], 0.0, 0.1);
        let labels: Vec<usize> = (0..8).map(|i| i % 2).collect();
        // Make class-1 samples bright so the task is learnable.
        for (i, &l) in labels.iter().enumerate() {
            if l == 1 {
                for v in &mut x.as_mut_slice()[i * 16..(i + 1) * 16] {
                    *v += 2.0;
                }
            }
        }
        let mut opt = Sgd::new(LrSchedule::Constant(0.05)).unwrap();
        let first = m.train_batch(&x, &labels, &mut opt).unwrap();
        let mut last = first;
        for _ in 0..40 {
            last = m.train_batch(&x, &labels, &mut opt).unwrap();
        }
        assert!(last < first, "loss should decrease: {first} → {last}");
    }
}
