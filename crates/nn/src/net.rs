//! High-level model operations: flat parameter vectors, training steps and
//! evaluation.

use fedms_tensor::{Tensor, TensorError};

use crate::{accuracy, softmax_cross_entropy, Layer, NnError, Result, Sgd};

/// Extracts samples `[start, end)` along axis 0 of a batch tensor.
///
/// # Errors
///
/// Returns an index error if `start > end` or `end` exceeds the batch size,
/// and a rank error for rank-0 tensors.
pub fn slice_batch(x: &Tensor, start: usize, end: usize) -> Result<Tensor> {
    if x.rank() == 0 {
        return Err(TensorError::RankMismatch { expected: 1, got: 0 }.into());
    }
    let batch = x.dims()[0];
    if start > end || end > batch {
        return Err(TensorError::IndexOutOfBounds { index: end, bound: batch }.into());
    }
    let stride: usize = x.dims()[1..].iter().product();
    let mut dims = x.dims().to_vec();
    dims[0] = end - start;
    Ok(Tensor::from_vec(x.as_slice()[start * stride..end * stride].to_vec(), &dims)?)
}

/// Whole-model convenience operations, blanket-implemented for every
/// [`Layer`].
///
/// The central abstraction is the **flat parameter vector**
/// ([`NeuralNet::param_vector`]): the Fed-MS servers aggregate, the
/// Byzantine attacks tamper with, and the trimmed-mean filter trims exactly
/// this representation.
pub trait NeuralNet: Layer {
    /// All parameters concatenated into one rank-1 tensor, in layer order.
    fn param_vector(&self) -> Tensor {
        let mut data = Vec::with_capacity(self.num_params());
        for p in self.params() {
            data.extend_from_slice(p.as_slice());
        }
        Tensor::from_slice(&data)
    }

    /// All accumulated gradients concatenated into one rank-1 tensor.
    fn grad_vector(&self) -> Tensor {
        let mut data = Vec::with_capacity(self.num_params());
        for g in self.grads() {
            data.extend_from_slice(g.as_slice());
        }
        Tensor::from_slice(&data)
    }

    /// Overwrites every parameter from a flat vector produced by
    /// [`NeuralNet::param_vector`] (of this or an architecturally identical
    /// model).
    ///
    /// # Errors
    ///
    /// Returns [`NnError::ParamLengthMismatch`] if the vector length differs
    /// from [`Layer::num_params`].
    fn set_param_vector(&mut self, v: &Tensor) -> Result<()> {
        let expected = self.num_params();
        if v.len() != expected {
            return Err(NnError::ParamLengthMismatch { got: v.len(), expected });
        }
        let mut offset = 0usize;
        for p in self.params_mut() {
            let n = p.len();
            p.as_mut_slice().copy_from_slice(&v.as_slice()[offset..offset + n]);
            offset += n;
        }
        Ok(())
    }

    /// Runs a forward pass without touching gradients.
    ///
    /// # Errors
    ///
    /// Propagates layer errors for ill-shaped inputs.
    fn predict(&mut self, x: &Tensor) -> Result<Tensor> {
        self.forward(x)
    }

    /// One mini-batch SGD step: zero grads → forward → softmax-CE →
    /// backward → optimiser update. Returns the batch loss.
    ///
    /// # Errors
    ///
    /// Propagates shape/label errors from the forward pass and loss.
    fn train_batch(&mut self, x: &Tensor, labels: &[usize], opt: &mut Sgd) -> Result<f32> {
        self.set_training(true);
        self.zero_grads();
        let logits = self.forward(x)?;
        let loss = softmax_cross_entropy(&logits, labels)?;
        self.backward(&loss.grad_logits)?;
        opt.step(self)?;
        Ok(loss.loss)
    }

    /// Classification accuracy over a dataset, evaluated in chunks of at
    /// most 256 samples to bound peak memory.
    ///
    /// # Errors
    ///
    /// Propagates shape/label errors.
    fn evaluate(&mut self, x: &Tensor, labels: &[usize]) -> Result<f32> {
        let batch = x.dims().first().copied().unwrap_or(0);
        if batch != labels.len() || batch == 0 {
            return Err(NnError::BadLabels(format!(
                "{} labels for dataset of {batch}",
                labels.len()
            )));
        }
        self.set_training(false);
        let mut correct = 0.0f64;
        let mut start = 0usize;
        while start < batch {
            let end = (start + 256).min(batch);
            let logits = self.forward(&slice_batch(x, start, end)?)?;
            let acc = accuracy(&logits, &labels[start..end])?;
            correct += acc as f64 * (end - start) as f64;
            start = end;
        }
        Ok((correct / batch as f64) as f32)
    }

    /// Mean softmax cross-entropy over a dataset, in chunks of 256.
    ///
    /// # Errors
    ///
    /// Propagates shape/label errors.
    fn evaluate_loss(&mut self, x: &Tensor, labels: &[usize]) -> Result<f32> {
        let batch = x.dims().first().copied().unwrap_or(0);
        if batch != labels.len() || batch == 0 {
            return Err(NnError::BadLabels(format!(
                "{} labels for dataset of {batch}",
                labels.len()
            )));
        }
        self.set_training(false);
        let mut total = 0.0f64;
        let mut start = 0usize;
        while start < batch {
            let end = (start + 256).min(batch);
            let logits = self.forward(&slice_batch(x, start, end)?)?;
            let out = softmax_cross_entropy(&logits, &labels[start..end])?;
            total += out.loss as f64 * (end - start) as f64;
            start = end;
        }
        Ok((total / batch as f64) as f32)
    }
}

impl<T: Layer + ?Sized> NeuralNet for T {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{LrSchedule, Mlp};
    use fedms_tensor::rng::rng_for;

    #[test]
    fn slice_batch_extracts_rows() {
        let x = Tensor::linspace(0.0, 11.0, 12).reshape(&[4, 3]).unwrap();
        let s = slice_batch(&x, 1, 3).unwrap();
        assert_eq!(s.dims(), &[2, 3]);
        assert_eq!(s.as_slice(), &[3.0, 4.0, 5.0, 6.0, 7.0, 8.0]);
        assert!(slice_batch(&x, 3, 5).is_err());
        assert!(slice_batch(&x, 3, 2).is_err());
        assert!(slice_batch(&Tensor::scalar(1.0), 0, 0).is_err());
    }

    #[test]
    fn param_vector_roundtrip() {
        let mut net = Mlp::new(&[3, 5, 2], 1).unwrap();
        let v = net.param_vector();
        assert_eq!(v.len(), net.num_params());
        let doubled = v.scaled(2.0);
        net.set_param_vector(&doubled).unwrap();
        assert_eq!(net.param_vector(), doubled);
    }

    #[test]
    fn set_param_vector_validates_length() {
        let mut net = Mlp::new(&[3, 5, 2], 1).unwrap();
        assert!(matches!(
            net.set_param_vector(&Tensor::zeros(&[3])),
            Err(NnError::ParamLengthMismatch { .. })
        ));
    }

    #[test]
    fn two_identical_models_share_vectors() {
        let a = Mlp::new(&[4, 6, 3], 7).unwrap();
        let mut b = Mlp::new(&[4, 6, 3], 8).unwrap();
        b.set_param_vector(&a.param_vector()).unwrap();
        assert_eq!(a.param_vector(), b.param_vector());
    }

    #[test]
    fn train_batch_reduces_loss_on_separable_data() {
        let mut rng = rng_for(99, &[]);
        // Two well-separated Gaussian blobs.
        let n = 64usize;
        let mut data = Vec::new();
        let mut labels = Vec::new();
        for i in 0..n {
            let c = i % 2;
            let center = if c == 0 { -2.0 } else { 2.0 };
            let noise = Tensor::randn(&mut rng, &[4], center, 0.3);
            data.extend_from_slice(noise.as_slice());
            labels.push(c);
        }
        let x = Tensor::from_vec(data, &[n, 4]).unwrap();
        let mut net = Mlp::new(&[4, 8, 2], 3).unwrap();
        let mut opt = Sgd::new(LrSchedule::Constant(0.1)).unwrap();
        let first = net.train_batch(&x, &labels, &mut opt).unwrap();
        let mut last = first;
        for _ in 0..30 {
            last = net.train_batch(&x, &labels, &mut opt).unwrap();
        }
        assert!(last < first * 0.5, "loss should halve: first {first}, last {last}");
        assert!(net.evaluate(&x, &labels).unwrap() > 0.95);
        assert!(net.evaluate_loss(&x, &labels).unwrap() < first);
    }

    #[test]
    fn evaluate_validates_inputs() {
        let mut net = Mlp::new(&[4, 8, 2], 3).unwrap();
        assert!(net.evaluate(&Tensor::zeros(&[2, 4]), &[0]).is_err());
        assert!(net.evaluate(&Tensor::zeros(&[0, 4]), &[]).is_err());
        assert!(net.evaluate_loss(&Tensor::zeros(&[2, 4]), &[0]).is_err());
    }

    #[test]
    fn grad_vector_has_param_length() {
        let mut net = Mlp::new(&[3, 4, 2], 5).unwrap();
        let x = Tensor::ones(&[2, 3]);
        net.zero_grads();
        let logits = net.forward(&x).unwrap();
        let loss = softmax_cross_entropy(&logits, &[0, 1]).unwrap();
        net.backward(&loss.grad_logits).unwrap();
        let g = net.grad_vector();
        assert_eq!(g.len(), net.num_params());
        assert!(g.norm_l2() > 0.0);
    }
}
