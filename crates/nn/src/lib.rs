//! Neural-network training substrate for the Fed-MS reproduction.
//!
//! The paper trains MobileNet V2 on CIFAR-10 with PyTorch; this crate is the
//! from-scratch Rust equivalent sized for a deterministic CPU reproduction:
//!
//! * a [`Layer`] trait with hand-written forward/backward passes,
//! * dense ([`Linear`]), convolutional ([`Conv2d`], [`DepthwiseConv2d`]),
//!   activation ([`ReLU`], [`ReLU6`]) and pooling ([`GlobalAvgPool`],
//!   [`Flatten`]) layers, composed with [`Sequential`],
//! * softmax cross-entropy loss ([`softmax_cross_entropy`]),
//! * mini-batch SGD ([`Sgd`]) with the paper's decaying step size
//!   `η_t = φ/(γ+t)` ([`LrSchedule::InverseDecay`]),
//! * ready-made models: [`Mlp`] and [`MobileNetNano`] (a miniature
//!   MobileNetV2 with inverted-residual blocks),
//! * convex quadratic objectives ([`convex`]) with known `L`, `μ`, `G`, `σ`
//!   for validating Theorem 1, and
//! * numerical gradient checking ([`gradcheck`]).
//!
//! Every model exposes its parameters as a single flat vector
//! ([`NeuralNet::param_vector`]) — the representation the Fed-MS aggregation
//! layer and the Byzantine attacks operate on.
//!
//! # Example
//!
//! ```
//! use fedms_nn::{Mlp, NeuralNet};
//! use fedms_tensor::Tensor;
//!
//! let mut net = Mlp::new(&[4, 8, 3], 42)?;
//! let x = Tensor::zeros(&[2, 4]); // batch of 2 samples
//! let logits = net.predict(&x)?;
//! assert_eq!(logits.dims(), &[2, 3]);
//! # Ok::<(), fedms_nn::NnError>(())
//! ```

pub mod convex;
mod error;
pub mod gradcheck;
mod layer;
mod layers;
mod loss;
mod models;
mod net;
mod sgd;

pub use error::NnError;
pub use layer::Layer;
pub use layers::{
    AvgPool2d, BatchNorm2d, Conv2d, DepthwiseConv2d, Dropout, Flatten, GlobalAvgPool, LeakyReLU,
    Linear, MaxPool2d, ReLU, ReLU6, Sequential, Sigmoid, Tanh,
};
pub use loss::{accuracy, softmax, softmax_cross_entropy, LossOutput};
pub use models::{Mlp, MobileNetNano, MobileNetNanoConfig};
pub use net::NeuralNet;
pub use sgd::{LrSchedule, Sgd};

/// Crate-wide `Result` alias using [`NnError`].
pub type Result<T> = std::result::Result<T, NnError>;
