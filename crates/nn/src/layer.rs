//! The [`Layer`] trait: hand-written reverse-mode differentiation.

use fedms_tensor::{BackendHandle, Tensor};

use crate::Result;

/// A differentiable network layer.
///
/// The contract is the classic cached-activation scheme:
///
/// 1. [`Layer::forward`] computes the output for a batch and caches whatever
///    it needs for the backward pass.
/// 2. [`Layer::backward`] consumes the gradient of the loss with respect to
///    the layer's *output*, **accumulates** gradients into the layer's
///    parameter-gradient buffers, and returns the gradient with respect to
///    the layer's *input*.
/// 3. [`Layer::zero_grads`] resets the accumulated gradients between
///    mini-batches.
///
/// Parameters and their gradients are exposed positionally; position `i` of
/// [`Layer::params`] corresponds to position `i` of [`Layer::grads`] and of
/// [`Layer::params_mut`]. Layers without parameters return empty vectors.
///
/// The trait is object-safe: models are `Vec<Box<dyn Layer>>`.
pub trait Layer: Send {
    /// A short human-readable layer name used in error messages.
    fn name(&self) -> &'static str;

    /// Computes the layer output for `input`, caching activations needed by
    /// [`Layer::backward`].
    ///
    /// # Errors
    ///
    /// Returns an error if `input` has the wrong shape for this layer.
    fn forward(&mut self, input: &Tensor) -> Result<Tensor>;

    /// Back-propagates `grad_out` (gradient w.r.t. this layer's output),
    /// accumulating parameter gradients and returning the gradient w.r.t.
    /// the layer input.
    ///
    /// # Errors
    ///
    /// Returns [`crate::NnError::NoForwardCache`] if called before
    /// [`Layer::forward`], or a tensor error if `grad_out` has the wrong
    /// shape.
    fn backward(&mut self, grad_out: &Tensor) -> Result<Tensor>;

    /// The layer's trainable parameters (possibly empty).
    fn params(&self) -> Vec<&Tensor>;

    /// Mutable access to the trainable parameters.
    fn params_mut(&mut self) -> Vec<&mut Tensor>;

    /// The accumulated parameter gradients, aligned with [`Layer::params`].
    fn grads(&self) -> Vec<&Tensor>;

    /// Resets all accumulated parameter gradients to zero.
    fn zero_grads(&mut self);

    /// Total number of scalar parameters in this layer.
    fn num_params(&self) -> usize {
        self.params().iter().map(|p| p.len()).sum()
    }

    /// Switches between training and inference behaviour. Most layers are
    /// mode-free (default no-op); layers with distinct behaviours
    /// (e.g. [`crate::BatchNorm2d`]'s batch statistics vs running
    /// statistics) override this. Containers must propagate the call.
    fn set_training(&mut self, _training: bool) {}

    /// Routes this layer's dense kernels through `backend`. Layers whose
    /// hot path is elementwise (activations, pooling) ignore it (default
    /// no-op); matmul/conv layers store the handle, and containers must
    /// propagate the call to their children.
    fn set_backend(&mut self, _backend: BackendHandle) {}

    /// The compute backend this layer currently runs on (the scalar
    /// reference backend unless [`Layer::set_backend`] changed it).
    fn backend(&self) -> BackendHandle {
        BackendHandle::scalar()
    }
}
