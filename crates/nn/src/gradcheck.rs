//! Numerical gradient checking for [`Layer`] implementations.
//!
//! Every layer in this crate is back-propagated by hand, so every layer is
//! verified against central finite differences. The check uses the scalar
//! loss `L(out) = ½‖out‖²`, whose gradient with respect to the output is the
//! output itself — no loss layer needed.

use fedms_tensor::Tensor;
use rand::seq::SliceRandom;
use rand::Rng;

use crate::{Layer, NnError, Result};

/// Maximum number of parameter coordinates probed per layer.
const MAX_PARAM_PROBES: usize = 48;
/// Maximum number of input coordinates probed.
const MAX_INPUT_PROBES: usize = 24;
/// Central-difference step, sized for `f32`.
const EPS: f32 = 5e-3;

fn loss_of(layer: &mut dyn Layer, input: &Tensor) -> Result<f32> {
    let out = layer.forward(input)?;
    Ok(0.5 * out.norm_l2_sq())
}

fn relative_error(analytic: f32, numeric: f32) -> f32 {
    (analytic - numeric).abs() / 1.0f32.max(analytic.abs()).max(numeric.abs())
}

/// Central difference with a kink detector. Returns `None` when the forward
/// and backward one-sided differences disagree, which signals a
/// non-differentiable kink (ReLU/ReLU6) inside the probing interval — e.g. a
/// zero-initialised bias sitting exactly on the ReLU kink. Such coordinates
/// are skipped rather than reported as failures.
fn numeric_grad(probe: &mut impl FnMut(f32) -> Result<f32>, orig: f32) -> Result<Option<f32>> {
    let l0 = probe(orig)?;
    let lp = probe(orig + EPS)?;
    let lm = probe(orig - EPS)?;
    probe(orig)?; // restore the original value (and the forward cache)
    let fwd = (lp - l0) / EPS;
    let bwd = (l0 - lm) / EPS;
    if relative_error(fwd, bwd) > 0.02 {
        return Ok(None);
    }
    Ok(Some((lp - lm) / (2.0 * EPS)))
}

/// Verifies a layer's analytic gradients (both parameter and input) against
/// central finite differences on a random input.
///
/// Probes up to 48 randomly chosen parameter coordinates and 24 input
/// coordinates; each must match within relative tolerance `tol`.
///
/// # Errors
///
/// Returns [`NnError::BadConfig`] describing the first coordinate whose
/// analytic and numeric gradients disagree, or propagates layer errors.
///
/// # Example
///
/// ```
/// use fedms_nn::{gradcheck, Linear};
/// use fedms_tensor::rng::rng_for;
///
/// let mut rng = rng_for(7, &[]);
/// let layer = Linear::new(3, 2, &mut rng)?;
/// gradcheck::check_layer(Box::new(layer), &[2, 3], 7, 2e-2)?;
/// # Ok::<(), fedms_nn::NnError>(())
/// ```
pub fn check_layer(
    mut layer: Box<dyn Layer>,
    input_dims: &[usize],
    seed: u64,
    tol: f32,
) -> Result<()> {
    check_layer_ref(layer.as_mut(), input_dims, seed, tol)
}

/// Borrowing form of [`check_layer`]: verifies the layer in place, leaving
/// every parameter at its original value afterwards. Useful for checking
/// the same layer repeatedly under different compute backends.
///
/// # Errors
///
/// Same contract as [`check_layer`].
pub fn check_layer_ref(
    layer: &mut dyn Layer,
    input_dims: &[usize],
    seed: u64,
    tol: f32,
) -> Result<()> {
    let mut rng = fedms_tensor::rng::rng_for(seed, &[0xC0DE]);
    let input = Tensor::randn(&mut rng, input_dims, 0.0, 1.0);

    // Analytic pass.
    let out = layer.forward(&input)?;
    layer.zero_grads();
    let grad_in = layer.backward(&out)?;
    let param_grads: Vec<Vec<f32>> = layer.grads().iter().map(|g| g.as_slice().to_vec()).collect();

    // Parameter gradients. The index walks `layer.params()` and
    // `layer.params_mut()` at once, so an iterator can't replace it.
    let n_tensors = layer.params().len();
    #[allow(clippy::needless_range_loop)]
    for pi in 0..n_tensors {
        let plen = layer.params()[pi].len();
        let mut coords: Vec<usize> = (0..plen).collect();
        coords.shuffle(&mut rng);
        coords.truncate(MAX_PARAM_PROBES / n_tensors.max(1) + 1);
        for ci in coords {
            let orig = layer.params()[pi].as_slice()[ci];
            let mut probe = |v: f32| -> Result<f32> {
                layer.params_mut()[pi].as_mut_slice()[ci] = v;
                loss_of(&mut *layer, &input)
            };
            let Some(numeric) = numeric_grad(&mut probe, orig)? else {
                continue; // kink inside the probing interval
            };
            let analytic = param_grads[pi][ci];
            let err = relative_error(analytic, numeric);
            if err > tol {
                return Err(NnError::BadConfig(format!(
                    "param grad mismatch at tensor {pi} coord {ci}: analytic {analytic}, numeric {numeric}, rel err {err}"
                )));
            }
        }
    }

    // Input gradients. Re-establish the forward cache on the true input.
    let mut input = input;
    let mut coords: Vec<usize> = (0..input.len()).collect();
    coords.shuffle(&mut rng);
    coords.truncate(MAX_INPUT_PROBES);
    for ci in coords {
        let orig = input.as_slice()[ci];
        let mut probe = |v: f32| -> Result<f32> {
            input.as_mut_slice()[ci] = v;
            loss_of(&mut *layer, &input)
        };
        let Some(numeric) = numeric_grad(&mut probe, orig)? else {
            continue;
        };
        let analytic = grad_in.as_slice()[ci];
        let err = relative_error(analytic, numeric);
        if err > tol {
            return Err(NnError::BadConfig(format!(
                "input grad mismatch at coord {ci}: analytic {analytic}, numeric {numeric}, rel err {err}"
            )));
        }
    }
    Ok(())
}

/// Draws a fresh random input compatible with `dims`; exposed so callers can
/// build custom checks for composite models.
pub fn random_input<R: Rng + ?Sized>(rng: &mut R, dims: &[usize]) -> Tensor {
    Tensor::randn(rng, dims, 0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Linear;

    #[test]
    fn accepts_correct_layer() {
        let mut rng = fedms_tensor::rng::rng_for(1, &[]);
        let l = Linear::new(3, 3, &mut rng).unwrap();
        check_layer(Box::new(l), &[2, 3], 1, 2e-2).unwrap();
    }

    #[test]
    fn rejects_broken_backward() {
        /// A linear layer whose backward doubles the true gradient.
        struct Broken(Linear);
        impl Layer for Broken {
            fn name(&self) -> &'static str {
                "broken"
            }
            fn forward(&mut self, input: &Tensor) -> Result<Tensor> {
                self.0.forward(input)
            }
            fn backward(&mut self, grad_out: &Tensor) -> Result<Tensor> {
                self.0.backward(&grad_out.scaled(2.0))
            }
            fn params(&self) -> Vec<&Tensor> {
                self.0.params()
            }
            fn params_mut(&mut self) -> Vec<&mut Tensor> {
                self.0.params_mut()
            }
            fn grads(&self) -> Vec<&Tensor> {
                self.0.grads()
            }
            fn zero_grads(&mut self) {
                self.0.zero_grads()
            }
        }
        let mut rng = fedms_tensor::rng::rng_for(2, &[]);
        let l = Broken(Linear::new(3, 3, &mut rng).unwrap());
        assert!(check_layer(Box::new(l), &[2, 3], 2, 2e-2).is_err());
    }

    #[test]
    fn random_input_has_requested_shape() {
        let mut rng = fedms_tensor::rng::rng_for(3, &[]);
        assert_eq!(random_input(&mut rng, &[2, 3]).dims(), &[2, 3]);
    }
}
