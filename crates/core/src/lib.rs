//! Fed-MS: Byzantine fault tolerant federated edge learning with multiple
//! servers.
//!
//! This crate is the reproduction of the paper's primary contribution
//! (Qi, Ma, Zou, Yuan, Li, Yu — ICDCS 2024). It assembles the substrates of
//! the workspace into the Fed-MS algorithm:
//!
//! * **multiple parameter servers** with a minority of Byzantine ones
//!   ([`fedms_sim::Topology`]),
//! * **sparse uploading** — each client uploads its local model to one
//!   uniformly random server, keeping communication at single-server-FL
//!   levels ([`fedms_sim::UploadStrategy::Sparse`]),
//! * the **trimmed-mean model filter** `Def(·)` each client applies to the
//!   `P` (possibly tampered) global models it receives
//!   ([`fedms_aggregation::TrimmedMean`]).
//!
//! The entry point is [`FedMsConfig`]: describe the federation, the attack
//! and the filter, then [`FedMsConfig::run`] executes the experiment and
//! returns the per-round accuracy series — the data behind Figures 2, 3
//! and 5 of the paper.
//!
//! The [`theory`] module implements Theorem 1's convergence bound in closed
//! form together with a convex-quadratic federated simulator that validates
//! the `O(1/T)` rate empirically.
//!
//! # Example
//!
//! ```no_run
//! use fedms_core::{FedMsConfig, FilterKind};
//! use fedms_attacks::AttackKind;
//!
//! // 50 clients, 10 servers, 2 Byzantine running the Random attack,
//! // defended by the paper's β = 0.2 trimmed-mean filter.
//! let mut cfg = FedMsConfig::paper_defaults(42)?;
//! cfg.byzantine_count = 2;
//! cfg.attack = AttackKind::Random { lo: -10.0, hi: 10.0 };
//! cfg.filter = FilterKind::TrimmedMean { beta: 0.2 };
//! cfg.rounds = 60;
//! let result = cfg.run()?;
//! println!("final accuracy: {:?}", result.final_accuracy());
//! # Ok::<(), fedms_core::CoreError>(())
//! ```

mod config;
mod error;
mod filter;
pub mod hash;
pub mod theory;

pub use config::{FedMsConfig, TransportKind};
pub use error::CoreError;
pub use fedms_aggregation::EstimatorPolicy;
pub use fedms_sim::ThreatSchedule;
pub use fedms_tensor::{Backend, BackendHandle, BackendKind};
pub use filter::FilterKind;
pub use hash::{fnv1a64, fnv1a64_hex};

/// Crate-wide `Result` alias using [`CoreError`].
pub type Result<T> = std::result::Result<T, CoreError>;
