//! Error type for the Fed-MS core.

use std::fmt;

use fedms_aggregation::AggError;
use fedms_attacks::AttackError;
use fedms_data::DataError;
use fedms_nn::NnError;
use fedms_sim::SimError;
use fedms_tensor::TensorError;

/// Errors produced while configuring or running Fed-MS.
#[derive(Debug, Clone, PartialEq)]
pub enum CoreError {
    /// Simulator failure.
    Sim(SimError),
    /// Dataset failure.
    Data(DataError),
    /// Aggregation failure.
    Agg(AggError),
    /// Attack failure.
    Attack(AttackError),
    /// Model failure.
    Nn(NnError),
    /// Tensor failure.
    Tensor(TensorError),
    /// Invalid Fed-MS configuration.
    BadConfig(String),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::Sim(e) => write!(f, "simulation error: {e}"),
            CoreError::Data(e) => write!(f, "data error: {e}"),
            CoreError::Agg(e) => write!(f, "aggregation error: {e}"),
            CoreError::Attack(e) => write!(f, "attack error: {e}"),
            CoreError::Nn(e) => write!(f, "model error: {e}"),
            CoreError::Tensor(e) => write!(f, "tensor error: {e}"),
            CoreError::BadConfig(msg) => write!(f, "bad configuration: {msg}"),
        }
    }
}

impl std::error::Error for CoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CoreError::Sim(e) => Some(e),
            CoreError::Data(e) => Some(e),
            CoreError::Agg(e) => Some(e),
            CoreError::Attack(e) => Some(e),
            CoreError::Nn(e) => Some(e),
            CoreError::Tensor(e) => Some(e),
            CoreError::BadConfig(_) => None,
        }
    }
}

impl From<SimError> for CoreError {
    fn from(e: SimError) -> Self {
        CoreError::Sim(e)
    }
}

impl From<DataError> for CoreError {
    fn from(e: DataError) -> Self {
        CoreError::Data(e)
    }
}

impl From<AggError> for CoreError {
    fn from(e: AggError) -> Self {
        CoreError::Agg(e)
    }
}

impl From<AttackError> for CoreError {
    fn from(e: AttackError) -> Self {
        CoreError::Attack(e)
    }
}

impl From<NnError> for CoreError {
    fn from(e: NnError) -> Self {
        CoreError::Nn(e)
    }
}

impl From<TensorError> for CoreError {
    fn from(e: TensorError) -> Self {
        CoreError::Tensor(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::error::Error;

    #[test]
    fn display_and_source() {
        let e: CoreError = AggError::Empty.into();
        assert!(e.to_string().contains("aggregation"));
        assert!(e.source().is_some());
        assert!(CoreError::BadConfig("x".into()).source().is_none());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<CoreError>();
    }
}
