//! Theorem 1 in closed form, plus a convex federated simulator that
//! validates the `O(1/T)` rate empirically.
//!
//! The paper proves that with `B < P/2` Byzantine servers, decaying steps
//! `η_t = 2/(μ(γ+t))`, `γ = max(8L/μ, E)`, Fed-MS satisfies
//!
//! `E[F(w̄_t)] − F* ≤ L/(2μ(γ+t)) · (4Δ + γμ²‖w̄₀ − w*‖²)`
//!
//! with the error budget
//!
//! `Δ = 6LΓ + 8E²G² + (1/K)Σσ_k² + 4P/(P−2B)²·E²G² + (K−P)/(K−1)·4/P·E²G²`.
//!
//! [`TheoremConstants`] evaluates the bound and exposes Δ's five-term
//! decomposition (heterogeneity, drift, SGD variance, Byzantine filter
//! error from Lemma 2, sparse-upload error from Lemma 3).
//! [`run_convex_fedms`] runs the actual Fed-MS loop on a
//! [`QuadraticFleet`], where every constant is known, producing the
//! measured `E[F(w̄_t)] − F*` series that the `theory` experiment compares
//! against the bound.

use fedms_aggregation::{AggregationRule, Mean, TrimmedMean};
use fedms_attacks::{AttackContext, AttackKind, ServerAttack};
use fedms_nn::convex::QuadraticFleet;
use fedms_tensor::rng::rng_for;
use fedms_tensor::Tensor;
use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::{CoreError, Result};

/// The constants of Assumptions 1–4 plus the federation sizes, from which
/// Theorem 1's bound is computed.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TheoremConstants {
    /// Smoothness `L` (Assumption 1).
    pub l: f64,
    /// Strong convexity `μ` (Assumption 2).
    pub mu: f64,
    /// Gradient-norm bound `G²` (Assumption 4).
    pub g_sq: f64,
    /// Mean stochastic-gradient variance `(1/K)Σσ_k²` (Assumption 3).
    pub sigma_sq_mean: f64,
    /// Heterogeneity `Γ = F* − (1/K)ΣF_k*`.
    pub gamma_het: f64,
    /// Local iterations per round `E`.
    pub e: usize,
    /// Clients `K`.
    pub k: usize,
    /// Servers `P`.
    pub p: usize,
    /// Byzantine servers `B`.
    pub b: usize,
}

impl TheoremConstants {
    /// Validates the preconditions of the theorem.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::BadConfig`] unless `0 < μ ≤ L`, `2B < P`,
    /// `E ≥ 1`, `K ≥ 2` and all constants are finite and non-negative.
    pub fn validate(&self) -> Result<()> {
        if !(self.mu > 0.0 && self.l >= self.mu && self.l.is_finite()) {
            return Err(CoreError::BadConfig(format!(
                "need 0 < mu <= L, got mu={}, L={}",
                self.mu, self.l
            )));
        }
        if 2 * self.b >= self.p {
            return Err(CoreError::BadConfig(format!(
                "theorem needs 2B < P, got B={}, P={}",
                self.b, self.p
            )));
        }
        if self.e == 0 || self.k < 2 {
            return Err(CoreError::BadConfig("need E >= 1 and K >= 2".into()));
        }
        if !(self.g_sq >= 0.0 && self.sigma_sq_mean >= 0.0 && self.gamma_het >= 0.0) {
            return Err(CoreError::BadConfig("constants must be non-negative".into()));
        }
        Ok(())
    }

    /// Heterogeneity term `6LΓ`.
    pub fn heterogeneity_term(&self) -> f64 {
        6.0 * self.l * self.gamma_het
    }

    /// Client-drift term `8E²G²` (Lemma 1).
    pub fn drift_term(&self) -> f64 {
        8.0 * (self.e * self.e) as f64 * self.g_sq
    }

    /// SGD-variance term `(1/K)Σσ_k²`.
    pub fn variance_term(&self) -> f64 {
        self.sigma_sq_mean
    }

    /// Byzantine-filter term `4P/(P−2B)² · E²G²` (Lemma 2).
    pub fn byzantine_term(&self) -> f64 {
        let denom = (self.p - 2 * self.b) as f64;
        4.0 * self.p as f64 / (denom * denom) * (self.e * self.e) as f64 * self.g_sq
    }

    /// Sparse-upload (partial participation) term
    /// `(K−P)/(K−1) · 4/P · E²G²` (Lemma 3); zero when `K ≤ P`.
    pub fn sparse_term(&self) -> f64 {
        if self.k <= self.p {
            return 0.0;
        }
        ((self.k - self.p) as f64 / (self.k - 1) as f64) * 4.0 / self.p as f64
            * (self.e * self.e) as f64
            * self.g_sq
    }

    /// The full error budget `Δ`.
    pub fn delta(&self) -> f64 {
        self.heterogeneity_term()
            + self.drift_term()
            + self.variance_term()
            + self.byzantine_term()
            + self.sparse_term()
    }

    /// The proof's step-size numerator `φ = 2/μ`.
    pub fn phi(&self) -> f64 {
        2.0 / self.mu
    }

    /// The proof's offset `γ = max(8L/μ, E)`.
    pub fn gamma_lr(&self) -> f64 {
        (8.0 * self.l / self.mu).max(self.e as f64)
    }

    /// The prescribed step size `η_t = φ/(γ+t)`.
    pub fn eta_at(&self, t: usize) -> f64 {
        self.phi() / (self.gamma_lr() + t as f64)
    }

    /// Theorem 1's bound on `E[F(w̄_t)] − F*` at global step `t`, given the
    /// initial distance `‖w̄₀ − w*‖²`.
    pub fn bound_at(&self, t: usize, w0_dist_sq: f64) -> f64 {
        let gamma = self.gamma_lr();
        self.l / (2.0 * self.mu * (gamma + t as f64))
            * (4.0 * self.delta() + gamma * self.mu * self.mu * w0_dist_sq)
    }
}

/// Configuration of the convex-quadratic Fed-MS validation run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ConvexFedMsConfig {
    /// Servers `P`.
    pub servers: usize,
    /// Byzantine servers `B` (the first `B` server ids attack).
    pub byzantine: usize,
    /// The Byzantine behaviour.
    pub attack: AttackKind,
    /// Trim rate β of the client filter (`None` = plain mean / vanilla).
    pub beta: Option<f64>,
    /// Local SGD iterations per round `E`.
    pub local_epochs: usize,
    /// Per-coordinate stochastic-gradient noise σ.
    pub noise_std: f32,
    /// Training rounds.
    pub rounds: usize,
    /// Root seed.
    pub seed: u64,
    /// Every client starts at `w₀ = init_offset · 1` (distance from the
    /// optimum makes the `O(1/T)` decay observable above the noise floor).
    pub init_offset: f32,
}

/// One point of the measured optimality-gap series.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GapPoint {
    /// Global SGD step `t = round · E`.
    pub step: usize,
    /// Measured `F(w̄) − F*`.
    pub gap: f64,
}

/// Runs the exact Fed-MS loop (local SGD → sparse upload → server mean →
/// Byzantine tampering → trimmed-mean filter) on a convex quadratic fleet
/// with the theorem's prescribed step size, and returns the optimality-gap
/// series `F(w̄_t) − F*` along with the constants used.
///
/// # Errors
///
/// Returns [`CoreError::BadConfig`] for an infeasible configuration and
/// propagates substrate errors.
pub fn run_convex_fedms(
    fleet: &QuadraticFleet,
    cfg: &ConvexFedMsConfig,
) -> Result<(Vec<GapPoint>, TheoremConstants)> {
    if cfg.servers == 0 || cfg.rounds == 0 || cfg.local_epochs == 0 {
        return Err(CoreError::BadConfig("servers, rounds, epochs must be positive".into()));
    }
    if cfg.byzantine > cfg.servers {
        return Err(CoreError::BadConfig("more byzantine than servers".into()));
    }
    let k = fleet.len();
    let d = fleet.dim();
    let constants = TheoremConstants {
        l: fleet.smoothness() as f64,
        mu: fleet.strong_convexity() as f64,
        // G² is estimated below from the run itself; start with 0 and fill in.
        g_sq: 0.0,
        sigma_sq_mean: (cfg.noise_std as f64 * cfg.noise_std as f64) * d as f64,
        gamma_het: fleet.gamma().max(0.0) as f64,
        e: cfg.local_epochs,
        k,
        p: cfg.servers,
        b: cfg.byzantine,
    };

    let filter: Box<dyn AggregationRule> = match cfg.beta {
        Some(beta) => Box::new(TrimmedMean::new(beta)?),
        None => Box::new(Mean::new()),
    };
    let mean_rule = Mean::new();
    let attacks: Vec<Option<Box<dyn ServerAttack>>> = (0..cfg.servers)
        .map(|i| if i < cfg.byzantine { cfg.attack.build().map(Some) } else { Ok(None) })
        .collect::<std::result::Result<_, _>>()?;

    let wstar = fleet.optimum();
    let fstar = fleet.optimal_value() as f64;
    let mut clients: Vec<Tensor> = vec![Tensor::full(&[d], cfg.init_offset); k];
    let mut histories: Vec<Vec<Tensor>> = vec![Vec::new(); cfg.servers];
    let mut upload_rng = rng_for(cfg.seed, &[0x75_70]);
    let mut attack_rng = rng_for(cfg.seed, &[0xA7_7A]);
    let mut max_g_sq = 0.0f64;
    let mut points = Vec::with_capacity(cfg.rounds + 1);

    let gap_of = |ws: &[Tensor]| -> Result<f64> {
        let mut mean = Tensor::zeros(&[d]);
        for w in ws {
            mean.add_inplace(w)?;
        }
        mean.scale(1.0 / ws.len() as f32);
        Ok(fleet.global_value(&mean)? as f64 - fstar)
    };
    points.push(GapPoint { step: 0, gap: gap_of(&clients)? });

    for round in 0..cfg.rounds {
        // Local training: E prescribed-step SGD iterations.
        for (ki, w) in clients.iter_mut().enumerate() {
            let mut rng = rng_for(cfg.seed, &[0x5347_4400, round as u64, ki as u64]);
            for i in 0..cfg.local_epochs {
                let t = round * cfg.local_epochs + i;
                let g = fleet.objectives()[ki].stochastic_grad(w, cfg.noise_std, &mut rng)?;
                max_g_sq = max_g_sq.max(g.norm_l2_sq() as f64);
                w.axpy(-(constants.eta_at(t) as f32), &g)?;
            }
        }
        // Sparse upload.
        let mut received: Vec<Vec<Tensor>> = vec![Vec::new(); cfg.servers];
        for w in &clients {
            received[upload_rng.gen_range(0..cfg.servers)].push(w.clone());
        }
        // Aggregation + dissemination.
        let mut disseminated = Vec::with_capacity(cfg.servers);
        for (i, bucket) in received.iter().enumerate() {
            let agg = if bucket.is_empty() {
                histories[i].last().cloned().unwrap_or_else(|| Tensor::zeros(&[d]))
            } else {
                mean_rule.aggregate(bucket)?
            };
            let out = match &attacks[i] {
                None => agg.clone(),
                Some(attack) => {
                    let ctx = AttackContext::new(round, i, &agg, &histories[i], k);
                    attack.tamper(&ctx, &mut attack_rng)?
                }
            };
            histories[i].push(agg);
            if histories[i].len() > 8 {
                histories[i].remove(0);
            }
            disseminated.push(out);
        }
        // Client-side filter (consistent broadcast → one shared model).
        let filtered = filter.aggregate(&disseminated)?;
        for w in &mut clients {
            *w = filtered.clone();
        }
        points.push(GapPoint { step: (round + 1) * cfg.local_epochs, gap: gap_of(&clients)? });
    }

    let mut constants = constants;
    constants.g_sq = max_g_sq;
    let _ = &wstar;
    Ok((points, constants))
}

/// Sweeps the Byzantine server count on a fixed fleet and returns, per `B`,
/// the mean optimality gap over the last quarter of the run (the stochastic
/// floor) — the measured counterpart of Δ's `4P/(P−2B)²·E²G²` term, which
/// predicts the floor to rise as `B → P/2`.
///
/// # Errors
///
/// Propagates configuration and run errors.
pub fn sweep_byzantine(
    fleet: &QuadraticFleet,
    base: &ConvexFedMsConfig,
    b_values: &[usize],
) -> Result<Vec<(usize, f64)>> {
    let mut out = Vec::with_capacity(b_values.len());
    for &b in b_values {
        let cfg =
            ConvexFedMsConfig { byzantine: b, beta: Some(b as f64 / base.servers as f64), ..*base };
        let (points, _) = run_convex_fedms(fleet, &cfg)?;
        let tail = &points[points.len() * 3 / 4..];
        let floor = tail.iter().map(|p| p.gap).sum::<f64>() / tail.len() as f64;
        out.push((b, floor));
    }
    Ok(out)
}

/// Least-squares slope of `log(gap)` against `log(step)` over the tail of a
/// gap series — `≈ −1` certifies the `O(1/T)` rate. Points with
/// non-positive gap or step are skipped.
pub fn log_log_slope(points: &[GapPoint]) -> Option<f64> {
    let pts: Vec<(f64, f64)> = points
        .iter()
        .filter(|p| p.gap > 0.0 && p.step > 0)
        .map(|p| ((p.step as f64).ln(), p.gap.ln()))
        .collect();
    if pts.len() < 3 {
        return None;
    }
    let n = pts.len() as f64;
    let sx: f64 = pts.iter().map(|p| p.0).sum();
    let sy: f64 = pts.iter().map(|p| p.1).sum();
    let sxx: f64 = pts.iter().map(|p| p.0 * p.0).sum();
    let sxy: f64 = pts.iter().map(|p| p.0 * p.1).sum();
    let denom = n * sxx - sx * sx;
    if denom.abs() < 1e-12 {
        return None;
    }
    Some((n * sxy - sx * sy) / denom)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn constants() -> TheoremConstants {
        TheoremConstants {
            l: 2.0,
            mu: 0.5,
            g_sq: 4.0,
            sigma_sq_mean: 1.0,
            gamma_het: 0.5,
            e: 3,
            k: 50,
            p: 10,
            b: 2,
        }
    }

    #[test]
    fn validation() {
        assert!(constants().validate().is_ok());
        let mut c = constants();
        c.b = 5;
        assert!(c.validate().is_err());
        let mut c = constants();
        c.mu = 0.0;
        assert!(c.validate().is_err());
        let mut c = constants();
        c.mu = 3.0; // > L
        assert!(c.validate().is_err());
        let mut c = constants();
        c.e = 0;
        assert!(c.validate().is_err());
    }

    #[test]
    fn delta_decomposition_sums() {
        let c = constants();
        let sum = c.heterogeneity_term()
            + c.drift_term()
            + c.variance_term()
            + c.byzantine_term()
            + c.sparse_term();
        assert!((c.delta() - sum).abs() < 1e-12);
        // Hand-check the Byzantine term: 4·10/(10−4)²·9·4 = 40/36·36 = 40.
        assert!((c.byzantine_term() - 40.0).abs() < 1e-9);
        // Sparse term: (50−10)/49 · 4/10 · 9 · 4 = 40/49·14.4 ≈ 11.755.
        assert!((c.sparse_term() - (40.0 / 49.0) * 0.4 * 36.0).abs() < 1e-9);
    }

    #[test]
    fn more_byzantine_servers_worsen_delta() {
        let mut c = constants();
        let base = c.delta();
        c.b = 4;
        assert!(c.delta() > base);
    }

    #[test]
    fn sparse_term_zero_when_k_small() {
        let mut c = constants();
        c.k = 10;
        assert_eq!(c.sparse_term(), 0.0);
        c.k = 5;
        assert_eq!(c.sparse_term(), 0.0);
    }

    #[test]
    fn step_size_follows_proof() {
        let c = constants();
        assert!((c.phi() - 4.0).abs() < 1e-12);
        assert!((c.gamma_lr() - 32.0).abs() < 1e-12); // 8·2/0.5 = 32 > E = 3
        assert!((c.eta_at(0) - 4.0 / 32.0).abs() < 1e-12);
        assert!(c.eta_at(10) < c.eta_at(0));
    }

    #[test]
    fn bound_decays_as_one_over_t() {
        let c = constants();
        let b1 = c.bound_at(100, 1.0);
        let b2 = c.bound_at(200, 1.0);
        // 1/t decay: doubling t should roughly halve the bound.
        let ratio = b1 / b2;
        assert!(ratio > 1.5 && ratio < 2.5, "ratio {ratio}");
    }

    #[test]
    fn convex_run_converges_and_matches_rate() {
        let fleet = QuadraticFleet::random(20, 8, 0.5, 2.0, 1.0, 3).unwrap();
        let cfg = ConvexFedMsConfig {
            servers: 5,
            byzantine: 1,
            attack: AttackKind::Random { lo: -10.0, hi: 10.0 },
            beta: Some(0.2),
            local_epochs: 2,
            noise_std: 0.1,
            rounds: 300,
            seed: 11,
            init_offset: 5.0,
        };
        let (points, constants) = run_convex_fedms(&fleet, &cfg).unwrap();
        assert_eq!(points.len(), 301);
        let first = points[1].gap;
        let last = points.last().unwrap().gap;
        assert!(last < first * 0.2, "gap should shrink: {first} → {last}");
        assert!(constants.g_sq > 0.0, "G² estimated from the run");
        // Tail slope of log gap vs log t should be ≈ −1 (allow slack: the
        // stochastic floor flattens the very end).
        // Measure the slope before the stochastic floor flattens the curve:
        // use the first half of the series.
        let slope = log_log_slope(&points[1..points.len() / 2]).unwrap();
        assert!(slope < -0.5, "expected decaying gap, slope {slope}");
    }

    #[test]
    fn vanilla_filter_diverges_under_random_attack() {
        let fleet = QuadraticFleet::random(20, 8, 0.5, 2.0, 1.0, 3).unwrap();
        let base = ConvexFedMsConfig {
            servers: 5,
            byzantine: 1,
            attack: AttackKind::Random { lo: -10.0, hi: 10.0 },
            beta: Some(0.2),
            local_epochs: 2,
            noise_std: 0.1,
            rounds: 100,
            seed: 12,
            init_offset: 5.0,
        };
        let (fedms, _) = run_convex_fedms(&fleet, &base).unwrap();
        let vanilla_cfg = ConvexFedMsConfig { beta: None, ..base };
        let (vanilla, _) = run_convex_fedms(&fleet, &vanilla_cfg).unwrap();
        let f_gap = fedms.last().unwrap().gap;
        let v_gap = vanilla.last().unwrap().gap;
        assert!(v_gap > 10.0 * f_gap, "vanilla gap {v_gap} should dwarf fed-ms gap {f_gap}");
    }

    #[test]
    fn convex_run_validates_config() {
        let fleet = QuadraticFleet::random(4, 2, 1.0, 1.0, 0.5, 0).unwrap();
        let bad = ConvexFedMsConfig {
            servers: 0,
            byzantine: 0,
            attack: AttackKind::Benign,
            beta: None,
            local_epochs: 1,
            noise_std: 0.0,
            rounds: 1,
            seed: 0,
            init_offset: 0.0,
        };
        assert!(run_convex_fedms(&fleet, &bad).is_err());
    }

    #[test]
    fn byzantine_sweep_floor_grows_toward_half() {
        let fleet = QuadraticFleet::random(20, 8, 0.5, 2.0, 1.0, 5).unwrap();
        let base = ConvexFedMsConfig {
            servers: 8,
            byzantine: 0,
            attack: AttackKind::Random { lo: -10.0, hi: 10.0 },
            beta: Some(0.0),
            local_epochs: 2,
            noise_std: 0.1,
            rounds: 150,
            seed: 17,
            init_offset: 3.0,
        };
        let sweep = sweep_byzantine(&fleet, &base, &[0, 3]).unwrap();
        assert_eq!(sweep.len(), 2);
        let clean = sweep[0].1;
        let near_half = sweep[1].1;
        assert!(
            near_half > clean,
            "floor should rise toward B = P/2: clean {clean}, B=3 {near_half}"
        );
    }

    #[test]
    fn log_log_slope_of_exact_power_law() {
        let points: Vec<GapPoint> =
            (1..50).map(|t| GapPoint { step: t, gap: 10.0 / t as f64 }).collect();
        let slope = log_log_slope(&points).unwrap();
        assert!((slope + 1.0).abs() < 1e-9, "slope {slope}");
        assert!(log_log_slope(&points[..2]).is_none());
    }
}
