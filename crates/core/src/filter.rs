//! Serializable selection of the client-side model filter `Def(·)`.

use fedms_aggregation::{
    AdaptiveTrimmedMean, AggregationRule, Bulyan, CenteredClip, CoordinateMedian, GeometricMedian,
    Krum, Mean, MultiKrum, NormBound, TrimmedMean,
};
use serde::{Deserialize, Serialize};

use crate::Result;

/// The defence each client applies to the `P` received global models.
///
/// [`FilterKind::TrimmedMean`] with `beta = B/P` is Fed-MS;
/// [`FilterKind::Mean`] is the undefended Vanilla-FL baseline; the rest are
/// ablation filters from the Byzantine-robust-FL literature the paper cites.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum FilterKind {
    /// Plain averaging (Vanilla FL).
    Mean,
    /// The paper's coordinate-wise β-trimmed mean.
    TrimmedMean {
        /// Trim rate β ∈ [0, 0.5).
        beta: f64,
    },
    /// Fault-tolerant trimmed mean discarding a fixed `trim = B` entries
    /// per side of however many models arrive (effective rate `B/P'`).
    /// Degrades gracefully when crash/omission faults shrink the sample;
    /// errors once `P' ≤ 2B`.
    AdaptiveTrimmedMean {
        /// Per-side trim count (set to the Byzantine bound `B`).
        trim: usize,
    },
    /// Coordinate-wise median.
    Median,
    /// Krum selection assuming `f` Byzantine inputs.
    Krum {
        /// Assumed Byzantine count.
        f: usize,
    },
    /// Multi-Krum: average the `m` best-scored of the inputs.
    MultiKrum {
        /// Assumed Byzantine count.
        f: usize,
        /// Number of models averaged.
        m: usize,
    },
    /// Smoothed geometric median (Weiszfeld).
    GeometricMedian,
    /// Bulyan: Krum selection followed by coordinate-wise trimming.
    Bulyan {
        /// Assumed Byzantine count.
        f: usize,
    },
    /// Iterative centered clipping with radius τ.
    CenteredClip {
        /// Clipping radius.
        tau: f32,
    },
    /// Norm-bounded averaging (cap at `factor ×` the median norm).
    NormBound {
        /// Cap factor over the median model norm.
        factor: f32,
    },
}

impl FilterKind {
    /// The Fed-MS filter for a topology with `b` Byzantine of `p` servers
    /// (`β = B/P`, the paper's matched trim rate).
    pub fn fedms(b: usize, p: usize) -> Self {
        FilterKind::TrimmedMean { beta: b as f64 / p as f64 }
    }

    /// The fault-tolerant Fed-MS filter for `b` Byzantine servers: trims
    /// exactly `b` per side of the models that actually arrive, so crashed
    /// or omitted servers raise the effective trim rate instead of
    /// weakening the defence.
    pub fn fedms_adaptive(b: usize) -> Self {
        FilterKind::AdaptiveTrimmedMean { trim: b }
    }

    /// A short label for experiment output.
    pub fn label(&self) -> &'static str {
        match self {
            FilterKind::Mean => "vanilla",
            FilterKind::TrimmedMean { .. } => "fed-ms",
            FilterKind::AdaptiveTrimmedMean { .. } => "fed-ms-adaptive",
            FilterKind::Median => "median",
            FilterKind::Krum { .. } => "krum",
            FilterKind::MultiKrum { .. } => "multi-krum",
            FilterKind::GeometricMedian => "geo-median",
            FilterKind::Bulyan { .. } => "bulyan",
            FilterKind::CenteredClip { .. } => "centered-clip",
            FilterKind::NormBound { .. } => "norm-bound",
        }
    }

    /// Instantiates the live rule.
    ///
    /// # Errors
    ///
    /// Propagates parameter validation from the concrete rules.
    pub fn build(&self) -> Result<Box<dyn AggregationRule>> {
        Ok(match *self {
            FilterKind::Mean => Box::new(Mean::new()),
            FilterKind::TrimmedMean { beta } => Box::new(TrimmedMean::new(beta)?),
            FilterKind::AdaptiveTrimmedMean { trim } => Box::new(AdaptiveTrimmedMean::new(trim)),
            FilterKind::Median => Box::new(CoordinateMedian::new()),
            FilterKind::Krum { f } => Box::new(Krum::new(f)),
            FilterKind::MultiKrum { f, m } => Box::new(MultiKrum::new(f, m)?),
            FilterKind::GeometricMedian => Box::new(GeometricMedian::new()),
            FilterKind::Bulyan { f } => Box::new(Bulyan::new(f)),
            FilterKind::CenteredClip { tau } => Box::new(CenteredClip::new(tau, 3)?),
            FilterKind::NormBound { factor } => Box::new(NormBound::new(factor)?),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fedms_matches_topology() {
        let f = FilterKind::fedms(2, 10);
        assert_eq!(f, FilterKind::TrimmedMean { beta: 0.2 });
        assert_eq!(f.label(), "fed-ms");
    }

    #[test]
    fn fedms_adaptive_pins_trim_count() {
        let f = FilterKind::fedms_adaptive(2);
        assert_eq!(f, FilterKind::AdaptiveTrimmedMean { trim: 2 });
        assert_eq!(f.label(), "fed-ms-adaptive");
        assert_eq!(f.build().unwrap().name(), "adaptive_trimmed_mean");
    }

    #[test]
    fn builds_every_kind() {
        for kind in [
            FilterKind::Mean,
            FilterKind::TrimmedMean { beta: 0.2 },
            FilterKind::AdaptiveTrimmedMean { trim: 2 },
            FilterKind::Median,
            FilterKind::Krum { f: 1 },
            FilterKind::MultiKrum { f: 1, m: 2 },
            FilterKind::GeometricMedian,
            FilterKind::Bulyan { f: 1 },
            FilterKind::CenteredClip { tau: 1.0 },
            FilterKind::NormBound { factor: 2.0 },
        ] {
            let rule = kind.build().unwrap();
            assert!(!rule.name().is_empty());
            assert!(!kind.label().is_empty());
        }
    }

    #[test]
    fn build_rejects_bad_parameters() {
        assert!(FilterKind::TrimmedMean { beta: 0.6 }.build().is_err());
        assert!(FilterKind::MultiKrum { f: 1, m: 0 }.build().is_err());
        assert!(FilterKind::CenteredClip { tau: 0.0 }.build().is_err());
        assert!(FilterKind::NormBound { factor: 0.0 }.build().is_err());
    }
}
