//! Stable content hashing for experiment provenance.
//!
//! Results files, run manifests and trial records are keyed by a hash of
//! the configuration that produced them. [`std::hash::Hasher`] makes no
//! stability promise across Rust releases, so provenance uses a hand-rolled
//! FNV-1a: the hash of a given byte string is fixed forever, which keeps
//! run-store directory names and resume lookups valid across toolchains.

/// FNV-1a offset basis (64-bit).
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a prime (64-bit).
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// The 64-bit FNV-1a hash of `bytes`.
///
/// Deterministic across platforms, toolchains and process runs — the
/// stability contract the experiment run store relies on.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h = FNV_OFFSET;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// [`fnv1a64`] rendered as 16 lowercase hex digits.
pub fn fnv1a64_hex(bytes: &[u8]) -> String {
    format!("{:016x}", fnv1a64(bytes))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Published FNV-1a test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn hex_rendering() {
        assert_eq!(fnv1a64_hex(b""), "cbf29ce484222325");
        assert_eq!(fnv1a64_hex(b"a").len(), 16);
    }

    #[test]
    fn distinct_inputs_distinct_hashes() {
        assert_ne!(fnv1a64(b"seed=1"), fnv1a64(b"seed=2"));
    }
}
