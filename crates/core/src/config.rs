//! End-to-end Fed-MS experiment configuration.

use fedms_aggregation::EstimatorPolicy;
use fedms_attacks::{AttackKind, ClientAttack, ClientAttackKind, ServerAttack};
use fedms_data::{DirichletPartitioner, SynthVisionConfig};
use fedms_nn::LrSchedule;
use fedms_sim::{
    EngineConfig, FaultPlan, FaultSpec, LocalTransport, ModelSpec, NetModel, NetTransport,
    Partitions, RecoveryPolicy, ResilientTransport, RunResult, SimulationEngine, ThreatSchedule,
    Topology, Transport, UploadStrategy,
};
use fedms_tensor::rng::derive_seed;
use fedms_tensor::BackendKind;
use serde::{Deserialize, Serialize};

use crate::{CoreError, FilterKind, Result};

/// A complete, serializable description of one Fed-MS experiment: the
/// federation (K, P, B), the Byzantine behaviour, the client-side filter,
/// the learning task and all training hyper-parameters.
///
/// [`FedMsConfig::paper_defaults`] reproduces Table II of the paper:
/// `K = 50` clients, `P = 10` servers, `E = 3` local iterations, Dirichlet
/// `D_α = 10`, sparse uploading, 60 training epochs, with `B`, the attack
/// and the trim rate left for each experiment to set.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FedMsConfig {
    /// Number of clients `K`.
    pub clients: usize,
    /// Number of parameter servers `P`.
    pub servers: usize,
    /// Number of Byzantine servers `B` (placed uniformly at random).
    pub byzantine_count: usize,
    /// The behaviour mounted on every Byzantine server.
    pub attack: AttackKind,
    /// Whether Byzantine servers equivocate (send different models to
    /// different clients — the paper's worst case).
    pub equivocate: bool,
    /// The client-side model filter `Def(·)`.
    pub filter: FilterKind,
    /// Client→server upload strategy.
    pub upload: UploadStrategy,
    /// Local SGD iterations per round (`E`).
    pub local_epochs: usize,
    /// Mini-batch size for local SGD.
    pub batch_size: usize,
    /// Learning-rate schedule.
    pub schedule: LrSchedule,
    /// Dirichlet concentration `D_α` for the non-iid partition.
    pub dirichlet_alpha: f64,
    /// Number of training rounds (the paper's "epochs").
    pub rounds: usize,
    /// The synthetic dataset standing in for CIFAR-10.
    pub dataset: SynthVisionConfig,
    /// The training model standing in for MobileNet V2.
    pub model: ModelSpec,
    /// Root seed for the whole experiment.
    pub seed: u64,
    /// Evaluate every `eval_every` rounds.
    pub eval_every: usize,
    /// Clients averaged for the accuracy metric (0 = all).
    pub eval_clients: usize,
    /// Multi-threaded client training (bit-identical results).
    pub parallel: bool,
    /// Worker-thread count for the client-parallel phases when `parallel`
    /// is on: 0 picks one thread per available core. Any count produces
    /// bit-identical results.
    #[serde(default)]
    pub threads: usize,
    /// Evaluate the clients' local models right after local training (the
    /// paper's metric) instead of the post-filter models.
    pub eval_after_local: bool,
    /// Number of Byzantine *clients* (extension beyond the paper: its
    /// stated future work). Placed uniformly at random.
    pub byzantine_clients: usize,
    /// The behaviour mounted on every Byzantine client.
    pub client_attack: ClientAttackKind,
    /// The aggregation rule benign servers apply to client uploads (the
    /// paper uses the plain mean; a robust rule defends against Byzantine
    /// clients).
    pub server_filter: FilterKind,
    /// Per-round client participation fraction in `(0, 1]` (1.0 = every
    /// client trains every round, the paper's setting).
    pub participation: f64,
    /// Record per-round defence diagnostics
    /// ([`fedms_sim::RoundDiagnostics`]).
    pub record_diagnostics: bool,
    /// Probability in `[0, 1)` that any single upload message is lost in
    /// transit (lossy outdoor edge links; 0 = the paper's reliable
    /// channel).
    pub upload_drop_rate: f64,
    /// Benign-fault scenario (crashed/straggler servers, lossy downlinks).
    /// The concrete victims are sampled from the run seed at build time;
    /// the default injects no faults.
    #[serde(default)]
    pub fault: FaultSpec,
    /// Transport recovery policy (deadline-driven retries, backoff and
    /// upload failover). Disabled by default, which keeps delivery
    /// bit-identical to the bare transport.
    #[serde(default)]
    pub recovery: RecoveryPolicy,
    /// Per-round cohort size: each round uniformly samples this many
    /// clients to train, upload and filter; the rest keep their current
    /// model. 0 (the default, the paper's setting) runs every client every
    /// round. Round memory and time scale with the cohort, which is what
    /// makes `K = 10⁶` federations simulable.
    #[serde(default)]
    pub cohort: usize,
    /// The delivery substrate: the synchronous in-process transport (the
    /// default, and the CI oracle) or the concurrent message-passing
    /// transport with per-server actors exchanging wire frames under
    /// [`FedMsConfig::net_model`].
    #[serde(default)]
    pub transport: TransportKind,
    /// Latency/bandwidth model of the `net` transport (ignored by
    /// `local`). The default ideal model keeps every delay at zero, which
    /// makes the two transports bit-identical; [`NetModel::edge`]-style
    /// settings make stragglers and deadline misses emerge from the
    /// network itself.
    #[serde(default)]
    pub net_model: NetModel,
    /// When positive, replaces the Dirichlet partition with a procedural
    /// uniform partition: every client draws this many samples (with
    /// replacement, on its own seed stream) from the training set, at
    /// `O(1)` storage per client. Required beyond ~10⁵ clients, where
    /// materializing explicit index lists stops being feasible.
    #[serde(default)]
    pub shard_samples: usize,
    /// Dynamic threat schedule: per-round epochs that compromise honest
    /// servers mid-run, partition links and corrupt wire frames
    /// ([`ThreatSchedule`]; parse one from the CLI grammar with
    /// [`ThreatSchedule::parse`]). Trivial by default.
    #[serde(default)]
    pub threat: ThreatSchedule,
    /// Online Byzantine-count estimator driving the adaptive trimmed-mean
    /// defence ([`EstimatorPolicy`]). Disabled by default, which keeps the
    /// configured `filter` in charge.
    #[serde(default)]
    pub estimator: EstimatorPolicy,
    /// Compute backend for client training kernels
    /// ([`fedms_tensor::BackendKind`]). `Scalar` (the default) is the
    /// deterministic CI oracle; `Blocked` selects the cache-blocked
    /// vectorized kernels and requires a build with the `backend-blocked`
    /// feature.
    #[serde(default)]
    pub backend: BackendKind,
}

/// Which delivery substrate [`FedMsConfig::build_engine`] hands to the
/// engine's phase pipeline.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum TransportKind {
    /// The synchronous in-process [`LocalTransport`] — the CI oracle.
    #[default]
    Local,
    /// The concurrent message-passing [`NetTransport`]: per-server actors
    /// exchanging versioned wire frames over bounded channels, under the
    /// config's [`FedMsConfig::net_model`].
    Net,
}

impl FedMsConfig {
    /// Table II defaults with no Byzantine servers and the Fed-MS filter at
    /// the paper's `β = 0.2`.
    ///
    /// # Errors
    ///
    /// Never fails for the built-in defaults; the `Result` mirrors the
    /// fallible construction path used by customised configurations.
    pub fn paper_defaults(seed: u64) -> Result<Self> {
        Ok(FedMsConfig {
            clients: 50,
            servers: 10,
            byzantine_count: 0,
            attack: AttackKind::Noise { std: 1.0 },
            equivocate: false,
            filter: FilterKind::TrimmedMean { beta: 0.2 },
            upload: UploadStrategy::Sparse,
            local_epochs: 3,
            batch_size: 32,
            schedule: LrSchedule::Constant(0.1),
            dirichlet_alpha: 10.0,
            rounds: 60,
            dataset: SynthVisionConfig::default(),
            model: ModelSpec::default_mlp(),
            seed,
            eval_every: 1,
            eval_clients: 0,
            parallel: true,
            threads: 0,
            eval_after_local: true,
            byzantine_clients: 0,
            client_attack: ClientAttackKind::SignFlip { scale: 1.0 },
            server_filter: FilterKind::Mean,
            participation: 1.0,
            record_diagnostics: false,
            upload_drop_rate: 0.0,
            fault: FaultSpec::default(),
            recovery: RecoveryPolicy::disabled(),
            transport: TransportKind::Local,
            net_model: NetModel::ideal(),
            cohort: 0,
            shard_samples: 0,
            threat: ThreatSchedule::none(),
            estimator: EstimatorPolicy::default(),
            backend: BackendKind::Scalar,
        })
    }

    /// A miniature configuration for tests: 8 clients, 4 servers, tiny
    /// dataset and model.
    pub fn tiny(seed: u64) -> Self {
        FedMsConfig {
            clients: 8,
            servers: 4,
            byzantine_count: 0,
            attack: AttackKind::Noise { std: 1.0 },
            equivocate: false,
            filter: FilterKind::TrimmedMean { beta: 0.25 },
            upload: UploadStrategy::Sparse,
            local_epochs: 2,
            batch_size: 8,
            schedule: LrSchedule::Constant(0.1),
            dirichlet_alpha: 10.0,
            rounds: 3,
            dataset: SynthVisionConfig::small(),
            model: ModelSpec::Mlp { widths: vec![16, 8, 4] },
            seed,
            eval_every: 1,
            eval_clients: 0,
            parallel: false,
            threads: 0,
            eval_after_local: true,
            byzantine_clients: 0,
            client_attack: ClientAttackKind::SignFlip { scale: 1.0 },
            server_filter: FilterKind::Mean,
            participation: 1.0,
            record_diagnostics: false,
            upload_drop_rate: 0.0,
            fault: FaultSpec::default(),
            recovery: RecoveryPolicy::disabled(),
            transport: TransportKind::Local,
            net_model: NetModel::ideal(),
            cohort: 0,
            shard_samples: 0,
            threat: ThreatSchedule::none(),
            estimator: EstimatorPolicy::default(),
            backend: BackendKind::Scalar,
        }
    }

    /// The Byzantine fraction ε = B/P.
    pub fn epsilon(&self) -> f64 {
        self.byzantine_count as f64 / self.servers as f64
    }

    /// Validates cross-field consistency.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::BadConfig`] for an infeasible federation
    /// (`B > P`, more Byzantine clients than clients) or zero rounds;
    /// engine-level validation happens at build time.
    pub fn validate(&self) -> Result<()> {
        if self.byzantine_count > self.servers {
            return Err(CoreError::BadConfig(format!(
                "{} byzantine of {} servers",
                self.byzantine_count, self.servers
            )));
        }
        if self.byzantine_clients >= self.clients {
            return Err(CoreError::BadConfig(format!(
                "{} byzantine of {} clients leaves no benign client",
                self.byzantine_clients, self.clients
            )));
        }
        if self.rounds == 0 {
            return Err(CoreError::BadConfig("rounds must be positive".into()));
        }
        self.fault.validate(self.servers).map_err(CoreError::from)?;
        Ok(())
    }

    /// Builds the live federation: generates the dataset, partitions it,
    /// places the Byzantine servers, instantiates attacks and filter.
    ///
    /// # Errors
    ///
    /// Propagates dataset, partitioning, attack and engine construction
    /// errors.
    pub fn build_engine(&self) -> Result<SimulationEngine> {
        self.validate()?;
        let (train, test) = self.dataset.generate(derive_seed(self.seed, &[0xDA7A]))?;
        // Explicit Dirichlet partitioning is the paper's setup; the
        // procedural uniform partition keeps construction O(1) per client
        // for federations too large to hold index lists for.
        let partitions = if self.shard_samples > 0 {
            Partitions::uniform(
                self.clients,
                train.len(),
                self.shard_samples,
                derive_seed(self.seed, &[0x9A97]),
            )?
        } else {
            Partitions::explicit(DirichletPartitioner::new(self.dirichlet_alpha)?.partition(
                &train,
                self.clients,
                derive_seed(self.seed, &[0x9A97]),
            )?)
        };
        let topology = Topology::with_random_byzantine(
            self.clients,
            self.servers,
            self.byzantine_count,
            derive_seed(self.seed, &[0xB42]),
        )?;
        let mut attacks: Vec<(usize, Box<dyn ServerAttack>)> = Vec::new();
        for id in topology.byzantine_ids() {
            let attack = if self.equivocate {
                self.attack.build_equivocating(derive_seed(self.seed, &[0xEC, id as u64]))?
            } else {
                self.attack.build()?
            };
            attacks.push((id, attack));
        }
        let mut client_attacks: Vec<(usize, Box<dyn ClientAttack>)> = Vec::new();
        if self.byzantine_clients > 0 {
            // Uniform random placement, seeded independently of the servers.
            let mut ids: Vec<usize> = (0..self.clients).collect();
            use rand::seq::SliceRandom;
            let mut rng = fedms_tensor::rng::rng_for(self.seed, &[0xC11E]);
            ids.shuffle(&mut rng);
            for &id in ids.iter().take(self.byzantine_clients) {
                client_attacks.push((id, self.client_attack.build()?));
            }
        }
        let engine_config = EngineConfig {
            topology,
            model: self.model.clone(),
            upload: self.upload,
            local_epochs: self.local_epochs,
            batch_size: self.batch_size,
            schedule: self.schedule,
            seed: self.seed,
            eval_every: self.eval_every,
            eval_clients: self.eval_clients,
            parallel: self.parallel,
            threads: self.threads,
            eval_after_local: self.eval_after_local,
            recovery: self.recovery,
            cohort: self.cohort,
            threat: self.threat.clone(),
            estimator: self.estimator,
            backend: self.backend,
        };
        let byz_client_ids: Vec<usize> = client_attacks.iter().map(|(id, _)| *id).collect();
        let mut engine = SimulationEngine::with_store(
            engine_config,
            &train,
            &test,
            partitions,
            self.filter.build()?,
            self.server_filter.build()?,
            attacks,
            client_attacks,
        )?;
        // Label-flip clients poison their *data*, not their upload.
        if let Some(offset) = self.client_attack.data_poison_offset() {
            for id in byz_client_ids {
                engine.poison_client_labels(id, offset)?;
            }
        }
        engine.set_participation(self.participation)?;
        // The delivery substrate is built explicitly: channel loss and the
        // realized fault plan are transport concerns, configured before the
        // transport is handed to the engine's phase pipeline. Either base
        // transport composes with the recovery decorator.
        let transport = match self.transport {
            TransportKind::Local => {
                self.finish_transport(LocalTransport::new(self.seed, self.clients, self.servers))?
            }
            TransportKind::Net => self.finish_transport(NetTransport::new(
                self.seed,
                self.clients,
                self.servers,
                self.net_model,
            ))?,
        };
        engine.set_transport(transport);
        engine.set_record_diagnostics(self.record_diagnostics);
        Ok(engine)
    }

    /// Installs channel loss and the sampled fault plan on a freshly built
    /// base transport, then wraps it in the recovery layer when the policy
    /// is active.
    fn finish_transport<T: Transport + 'static>(&self, mut base: T) -> Result<Box<dyn Transport>> {
        base.set_upload_drop_rate(self.upload_drop_rate)?;
        if !self.fault.is_trivial() {
            // The victims are a pure function of (spec, seed): FaultPlan
            // sampling draws from its own labelled RNG stream.
            let plan = FaultPlan::sample(&self.fault, self.servers, self.seed)?;
            base.install_fault_plan(plan)?;
        }
        if self.recovery.is_disabled() {
            Ok(Box::new(base))
        } else {
            Ok(Box::new(ResilientTransport::new(
                base,
                self.recovery,
                self.seed,
                self.clients,
                self.servers,
            )?))
        }
    }

    /// A stable 64-bit content hash of the full configuration (FNV-1a over
    /// the canonical JSON serialization).
    ///
    /// Two configs hash equal iff they serialize identically, so the hash
    /// is a durable identity for provenance stamps, run-store directory
    /// names and resume lookups. The seed is part of the hash: the same
    /// grid cell under two seeds is two distinct trials.
    pub fn stable_hash(&self) -> u64 {
        let json = serde_json::to_string(self).unwrap_or_default();
        crate::hash::fnv1a64(json.as_bytes())
    }

    /// [`FedMsConfig::stable_hash`] as 16 lowercase hex digits.
    pub fn stable_hash_hex(&self) -> String {
        format!("{:016x}", self.stable_hash())
    }

    /// Runs the full experiment and returns the per-round metrics.
    ///
    /// # Errors
    ///
    /// Propagates construction and training errors.
    pub fn run(&self) -> Result<RunResult> {
        let mut engine = self.build_engine()?;
        Ok(engine.run(self.rounds)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dual_threat_run_completes() {
        let mut cfg = FedMsConfig::tiny(13);
        cfg.byzantine_count = 1;
        cfg.attack = AttackKind::Noise { std: 1.0 };
        cfg.byzantine_clients = 2;
        cfg.client_attack = ClientAttackKind::SignFlip { scale: 2.0 };
        cfg.server_filter = FilterKind::TrimmedMean { beta: 0.3 };
        let result = cfg.run().unwrap();
        assert_eq!(result.rounds.len(), 3);
        assert!(result.final_accuracy().unwrap().is_finite());
    }

    #[test]
    fn label_flip_clients_run() {
        let mut cfg = FedMsConfig::tiny(15);
        cfg.byzantine_clients = 2;
        cfg.client_attack = ClientAttackKind::LabelFlip { offset: 1 };
        cfg.server_filter = FilterKind::Median;
        let result = cfg.run().unwrap();
        assert!(result.final_accuracy().unwrap().is_finite());
    }

    #[test]
    fn lossy_uplink_run() {
        let mut cfg = FedMsConfig::tiny(16);
        cfg.upload_drop_rate = 0.3;
        let result = cfg.run().unwrap();
        assert!(result.final_accuracy().unwrap().is_finite());
        let mut bad = FedMsConfig::tiny(16);
        bad.upload_drop_rate = 1.0;
        assert!(bad.run().is_err());
    }

    #[test]
    fn partial_participation_run() {
        let mut cfg = FedMsConfig::tiny(14);
        cfg.participation = 0.5;
        cfg.record_diagnostics = true;
        let result = cfg.run().unwrap();
        // 8 clients at 50% → 4 sparse uploads per round over 3 rounds.
        assert_eq!(result.total_comm.upload_messages, 12);
        assert!(result.rounds[0].diagnostics.is_some());
        let mut bad = FedMsConfig::tiny(14);
        bad.participation = 0.0;
        assert!(bad.run().is_err());
    }

    #[test]
    fn validates_byzantine_client_count() {
        let mut cfg = FedMsConfig::tiny(0);
        cfg.byzantine_clients = cfg.clients;
        assert!(cfg.validate().is_err());
        cfg.byzantine_clients = cfg.clients - 1;
        assert!(cfg.validate().is_ok());
    }

    #[test]
    fn paper_defaults_match_table_ii() {
        let cfg = FedMsConfig::paper_defaults(0).unwrap();
        assert_eq!(cfg.clients, 50);
        assert_eq!(cfg.servers, 10);
        assert_eq!(cfg.local_epochs, 3);
        assert_eq!(cfg.dirichlet_alpha, 10.0);
        assert_eq!(cfg.rounds, 60);
        assert_eq!(cfg.upload, UploadStrategy::Sparse);
        assert_eq!(cfg.filter, FilterKind::TrimmedMean { beta: 0.2 });
    }

    #[test]
    fn validation() {
        let mut cfg = FedMsConfig::tiny(0);
        cfg.byzantine_count = 5; // > servers = 4
        assert!(cfg.validate().is_err());
        let mut cfg = FedMsConfig::tiny(0);
        cfg.rounds = 0;
        assert!(cfg.validate().is_err());
        assert!(FedMsConfig::tiny(0).validate().is_ok());
    }

    #[test]
    fn epsilon_computation() {
        let mut cfg = FedMsConfig::tiny(0);
        cfg.byzantine_count = 1;
        assert!((cfg.epsilon() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn tiny_run_completes_and_is_deterministic() {
        let cfg = FedMsConfig::tiny(5);
        let a = cfg.run().unwrap();
        let b = cfg.run().unwrap();
        assert_eq!(a, b);
        assert_eq!(a.rounds.len(), 3);
        assert!(a.final_accuracy().unwrap() > 0.0);
    }

    #[test]
    fn byzantine_run_with_attack() {
        let mut cfg = FedMsConfig::tiny(6);
        cfg.byzantine_count = 1;
        cfg.attack = AttackKind::Random { lo: -10.0, hi: 10.0 };
        let result = cfg.run().unwrap();
        assert_eq!(result.rounds.len(), 3);
    }

    #[test]
    fn equivocating_run_completes() {
        let mut cfg = FedMsConfig::tiny(7);
        cfg.byzantine_count = 1;
        cfg.equivocate = true;
        cfg.attack = AttackKind::Random { lo: -10.0, hi: 10.0 };
        let result = cfg.run().unwrap();
        assert_eq!(result.rounds.len(), 3);
    }

    #[test]
    fn stable_hash_tracks_content() {
        let a = FedMsConfig::tiny(1);
        let b = FedMsConfig::tiny(1);
        assert_eq!(a.stable_hash(), b.stable_hash());
        assert_eq!(a.stable_hash_hex().len(), 16);
        let mut c = FedMsConfig::tiny(1);
        c.seed = 2;
        assert_ne!(a.stable_hash(), c.stable_hash(), "seed must be part of the identity");
        let mut d = FedMsConfig::tiny(1);
        d.rounds += 1;
        assert_ne!(a.stable_hash(), d.stable_hash());
    }

    #[test]
    fn serde_roundtrip() {
        let cfg = FedMsConfig::paper_defaults(1).unwrap();
        let json = serde_json::to_string(&cfg).unwrap();
        let back: FedMsConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(cfg, back);
    }
}
