//! Property-based tests of Theorem 1's closed-form machinery.

use fedms_core::theory::TheoremConstants;
use proptest::prelude::*;

fn constants_strategy() -> impl Strategy<Value = TheoremConstants> {
    (
        0.1f64..2.0,  // mu
        1.0f64..8.0,  // l multiplier over mu
        0.0f64..50.0, // g_sq
        0.0f64..10.0, // sigma
        0.0f64..10.0, // gamma_het
        1usize..5,    // e
        2usize..100,  // k
        3usize..30,   // p
    )
        .prop_flat_map(|(mu, lmul, g_sq, sigma, gamma_het, e, k, p)| {
            (0usize..p.div_ceil(2)).prop_map(move |b| TheoremConstants {
                l: mu * lmul,
                mu,
                g_sq,
                sigma_sq_mean: sigma,
                gamma_het,
                e,
                k,
                p,
                b,
            })
        })
        .prop_filter("theorem precondition", |c| c.validate().is_ok())
}

proptest! {
    /// Δ equals the sum of its five printed terms.
    #[test]
    fn delta_is_sum_of_terms(c in constants_strategy()) {
        let sum = c.heterogeneity_term()
            + c.drift_term()
            + c.variance_term()
            + c.byzantine_term()
            + c.sparse_term();
        prop_assert!((c.delta() - sum).abs() < 1e-9 * (1.0 + sum.abs()));
        prop_assert!(c.delta() >= 0.0);
    }

    /// The bound decays monotonically in t and scales like Θ(1/t).
    #[test]
    fn bound_decays_one_over_t(c in constants_strategy(), w0 in 0.0f64..100.0) {
        let b10 = c.bound_at(10, w0);
        let b20 = c.bound_at(20, w0);
        let b40 = c.bound_at(40, w0);
        prop_assert!(b20 <= b10 + 1e-12);
        prop_assert!(b40 <= b20 + 1e-12);
        // 1/t family: bound_at(t)·(γ+t) is constant.
        let g = c.gamma_lr();
        let x10 = b10 * (g + 10.0);
        let x40 = b40 * (g + 40.0);
        prop_assert!((x10 - x40).abs() < 1e-6 * (1.0 + x10.abs()));
    }

    /// More Byzantine servers never shrink the error budget.
    #[test]
    fn delta_monotone_in_b(c in constants_strategy()) {
        prop_assume!(2 * (c.b + 1) < c.p);
        let worse = TheoremConstants { b: c.b + 1, ..c };
        prop_assert!(worse.delta() + 1e-12 >= c.delta());
    }

    /// The prescribed step size respects the proof's preconditions:
    /// non-increasing and η_t ≤ 2·η_{t+E}.
    #[test]
    fn step_size_preconditions(c in constants_strategy()) {
        for t in 0..50 {
            prop_assert!(c.eta_at(t + 1) <= c.eta_at(t) + 1e-15);
            prop_assert!(c.eta_at(t) <= 2.0 * c.eta_at(t + c.e) + 1e-12);
        }
        // η_0 = φ/γ ≤ 1/(4L) given γ = max(8L/μ, E) and φ = 2/μ.
        prop_assert!(c.eta_at(0) <= 1.0 / (4.0 * c.l) + 1e-12);
    }
}
