//! Property-based tests of the aggregation-rule robustness invariants —
//! the order-statistics sandwich that powers Lemma 2, and the bit-exact
//! equivalence of the blocked selection kernels with the sort-based
//! oracle.

use fedms_aggregation::{
    kernel, reference, trimmed_mean_scalars, AdaptiveTrimmedMean, AggregationRule, Bulyan,
    CenteredClip, CoordinateMedian, GeometricMedian, Krum, Mean, NormBound, TrimmedMean,
};
use fedms_tensor::Tensor;
use proptest::prelude::*;

fn models_strategy(n: usize, d: usize) -> impl Strategy<Value = Vec<Tensor>> {
    proptest::collection::vec(proptest::collection::vec(-50.0f32..50.0, d), n)
        .prop_map(|vs| vs.into_iter().map(|v| Tensor::from_slice(&v)).collect())
}

/// Widens a plain float into the full adversarial value pool: NaN, ±∞,
/// signed zeros and heavy duplication, the inputs where a NaN-unsound
/// comparator or a reordered float sum would diverge first.
fn adversarial_value(selector: u32, v: f32) -> f32 {
    match selector % 10 {
        0 => f32::NAN,
        1 => f32::INFINITY,
        2 => f32::NEG_INFINITY,
        3 => 0.0,
        4 => -0.0,
        5 | 6 => 1.0, // duplicates collide often
        _ => v,
    }
}

/// `(models, trim)` over random federation sizes (spanning both kernel
/// strategies: network at small `P`, selection past `NETWORK_MAX`),
/// dimensions crossing the block boundary, and adversarial values.
fn raw_models_and_trim() -> impl Strategy<Value = (Vec<Vec<f32>>, usize)> {
    (3usize..40, 1usize..80).prop_flat_map(|(n, d)| {
        let value = (0u32..10, -100.0f32..100.0).prop_map(|(s, v)| adversarial_value(s, v));
        let models = proptest::collection::vec(proptest::collection::vec(value, d), n);
        (models, 0usize..((n - 1) / 2 + 1))
    })
}

fn bits(values: &[f32]) -> Vec<u32> {
    values.iter().map(|v| v.to_bits()).collect()
}

proptest! {
    /// Lemma 2's core fact: with `trim ≥ B` tampered values, every
    /// coordinate of the trimmed mean lies within [min, max] of the honest
    /// values.
    #[test]
    fn trimmed_mean_bounded_by_honest_range(
        honest in proptest::collection::vec(-10.0f32..10.0, 8),
        byz in proptest::collection::vec(-1e6f32..1e6, 2),
    ) {
        let mut all = honest.clone();
        all.extend_from_slice(&byz);
        let out = trimmed_mean_scalars(&all, 2).unwrap();
        let lo = honest.iter().copied().fold(f32::INFINITY, f32::min);
        let hi = honest.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        prop_assert!(out >= lo - 1e-4 && out <= hi + 1e-4, "out {out} not in [{lo}, {hi}]");
    }

    /// The paper's order-statistics sandwich (equation 7):
    /// `p_{k-B} ≤ q_k ≤ p_{k+B}` after tampering B of P sorted scalars.
    #[test]
    fn order_statistics_sandwich(
        honest in proptest::collection::vec(-100.0f32..100.0, 10),
        byz in proptest::collection::vec(-1e5f32..1e5, 3),
        positions in proptest::collection::vec(0usize..10, 3),
    ) {
        let b = 3usize;
        let mut p = honest.clone();
        p.sort_by(|x, y| x.partial_cmp(y).unwrap());
        let mut tampered = honest;
        for (slot, (&pos, &val)) in positions.iter().zip(byz.iter()).enumerate() {
            let _ = slot;
            tampered[pos] = val; // may overwrite fewer than B distinct slots — still ≤ B tampered
        }
        let mut q = tampered;
        q.sort_by(|x, y| x.partial_cmp(y).unwrap());
        for k in b..(10 - b) {
            prop_assert!(q[k] >= p[k - b] - 1e-4);
            prop_assert!(q[k] <= p[k + b] + 1e-4);
        }
    }

    /// All rules agree on identical inputs: aggregate({m, m, …}) = m.
    #[test]
    fn rules_fix_identical_inputs(v in proptest::collection::vec(-10.0f32..10.0, 6)) {
        let m = Tensor::from_slice(&v);
        let models = vec![m.clone(); 7];
        let rules: Vec<Box<dyn AggregationRule>> = vec![
            Box::new(Mean::new()),
            Box::new(TrimmedMean::new(0.2).unwrap()),
            Box::new(CoordinateMedian::new()),
            Box::new(GeometricMedian::new()),
            Box::new(Krum::new(2)),
        ];
        for rule in rules {
            let out = rule.aggregate(&models).unwrap();
            for (a, b) in out.as_slice().iter().zip(m.as_slice()) {
                prop_assert!((a - b).abs() < 1e-4, "{} drifted", rule.name());
            }
        }
    }

    /// Permutation invariance: shuffling the model list never changes the
    /// trimmed mean, median, or mean.
    #[test]
    fn permutation_invariance(models in models_strategy(9, 5), rot in 1usize..8) {
        let mut rotated = models.clone();
        rotated.rotate_left(rot);
        for rule in [&TrimmedMean::new(0.2).unwrap() as &dyn AggregationRule,
                     &Mean::new(), &CoordinateMedian::new()] {
            let a = rule.aggregate(&models).unwrap();
            let b = rule.aggregate(&rotated).unwrap();
            for (x, y) in a.as_slice().iter().zip(b.as_slice()) {
                prop_assert!((x - y).abs() < 1e-4);
            }
        }
    }

    /// Translation equivariance: aggregate(models + c) = aggregate(models) + c.
    #[test]
    fn translation_equivariance(models in models_strategy(7, 4), c in -20.0f32..20.0) {
        let shifted: Vec<Tensor> = models.iter().map(|m| m.add_scalar(c)).collect();
        for rule in [&TrimmedMean::new(0.2).unwrap() as &dyn AggregationRule,
                     &Mean::new(), &CoordinateMedian::new()] {
            let a = rule.aggregate(&models).unwrap();
            let b = rule.aggregate(&shifted).unwrap();
            for (x, y) in a.as_slice().iter().zip(b.as_slice()) {
                prop_assert!((x + c - y).abs() < 1e-2, "{} not equivariant", rule.name());
            }
        }
    }

    /// Trimmed mean interpolates between mean (β=0) and median (β→0.5):
    /// its output always lies within the per-coordinate sample range.
    #[test]
    fn trimmed_mean_within_sample_range(models in models_strategy(10, 3)) {
        let out = TrimmedMean::new(0.3).unwrap().aggregate(&models).unwrap();
        for d in 0..3 {
            let col: Vec<f32> = models.iter().map(|m| m.as_slice()[d]).collect();
            let lo = col.iter().copied().fold(f32::INFINITY, f32::min);
            let hi = col.iter().copied().fold(f32::NEG_INFINITY, f32::max);
            prop_assert!(out.as_slice()[d] >= lo - 1e-4);
            prop_assert!(out.as_slice()[d] <= hi + 1e-4);
        }
    }

    /// Krum always returns one of its inputs.
    #[test]
    fn krum_returns_an_input(models in models_strategy(6, 4)) {
        let out = Krum::new(1).aggregate(&models).unwrap();
        prop_assert!(models.iter().any(|m| m == &out));
    }

    /// Every rule (including the newer baselines) fixes identical inputs.
    #[test]
    fn newer_rules_fix_identical_inputs(v in proptest::collection::vec(-10.0f32..10.0, 5)) {
        let m = Tensor::from_slice(&v);
        let models = vec![m.clone(); 8];
        let rules: Vec<Box<dyn AggregationRule>> = vec![
            Box::new(Bulyan::new(1)),
            Box::new(CenteredClip::new(1.0, 3).unwrap()),
            Box::new(NormBound::new(2.0).unwrap()),
        ];
        for rule in rules {
            let out = rule.aggregate(&models).unwrap();
            for (a, b) in out.as_slice().iter().zip(m.as_slice()) {
                prop_assert!((a - b).abs() < 1e-3, "{} drifted", rule.name());
            }
        }
    }

    /// Centered clipping's output never strays more than iters·τ from the
    /// coordinate-wise median it starts at.
    #[test]
    fn centered_clip_bounded_displacement(
        models in models_strategy(7, 4),
        tau in 0.1f32..5.0,
    ) {
        let median = CoordinateMedian::new().aggregate(&models).unwrap();
        let out = CenteredClip::new(tau, 3).unwrap().aggregate(&models).unwrap();
        let moved = out.sub(&median).unwrap().norm_l2();
        prop_assert!(moved <= 3.0 * tau + 1e-3, "moved {moved} with tau {tau}");
    }

    /// Norm-bounding caps every contribution: the output norm never exceeds
    /// factor × the median input norm (triangle inequality over the mean).
    #[test]
    fn norm_bound_output_norm_capped(models in models_strategy(9, 4), factor in 0.5f32..3.0) {
        let mut norms: Vec<f32> = models.iter().map(Tensor::norm_l2).collect();
        norms.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = norms[4];
        let out = NormBound::new(factor).unwrap().aggregate(&models).unwrap();
        prop_assert!(out.norm_l2() <= factor * median + 1e-3);
    }

    /// Bulyan's output stays within the per-coordinate range of its inputs.
    #[test]
    fn bulyan_within_sample_range(models in models_strategy(7, 3)) {
        let out = Bulyan::new(1).aggregate(&models).unwrap();
        for d in 0..3 {
            let col: Vec<f32> = models.iter().map(|m| m.as_slice()[d]).collect();
            let lo = col.iter().copied().fold(f32::INFINITY, f32::min);
            let hi = col.iter().copied().fold(f32::NEG_INFINITY, f32::max);
            prop_assert!(out.as_slice()[d] >= lo - 1e-4);
            prop_assert!(out.as_slice()[d] <= hi + 1e-4);
        }
    }

    /// The fault-tolerant filter is permutation invariant at *every* sample
    /// size above its quorum — the property the degraded-delivery path
    /// relies on, since omission faults reorder and shrink the view.
    #[test]
    fn adaptive_permutation_invariant_across_sizes(
        models in (5usize..12).prop_flat_map(|n| models_strategy(n, 4)),
        rot in 1usize..4,
        trim in 0usize..2,
    ) {
        let mut rotated = models.clone();
        rotated.rotate_left(rot % models.len());
        let rule = AdaptiveTrimmedMean::new(trim);
        let a = rule.aggregate(&models).unwrap();
        let b = rule.aggregate(&rotated).unwrap();
        for (x, y) in a.as_slice().iter().zip(b.as_slice()) {
            prop_assert!((x - y).abs() < 1e-4);
        }
    }

    /// Whatever subset of servers survives, the adaptive filter's output is
    /// sandwiched by the survivors' per-coordinate min/max.
    #[test]
    fn adaptive_bounded_by_survivor_range(
        models in (5usize..11).prop_flat_map(|n| models_strategy(n, 3)),
        trim in 1usize..3,
    ) {
        prop_assume!(models.len() > 2 * trim);
        let out = AdaptiveTrimmedMean::new(trim).aggregate(&models).unwrap();
        for d in 0..3 {
            let col: Vec<f32> = models.iter().map(|m| m.as_slice()[d]).collect();
            let lo = col.iter().copied().fold(f32::INFINITY, f32::min);
            let hi = col.iter().copied().fold(f32::NEG_INFINITY, f32::max);
            prop_assert!(out.as_slice()[d] >= lo - 1e-4);
            prop_assert!(out.as_slice()[d] <= hi + 1e-4);
        }
    }

    /// With nothing trimmed the adaptive filter is exactly the mean, at any
    /// sample size.
    #[test]
    fn adaptive_zero_trim_equals_mean(
        models in (3usize..10).prop_flat_map(|n| models_strategy(n, 5)),
    ) {
        let a = AdaptiveTrimmedMean::new(0).aggregate(&models).unwrap();
        let b = Mean::new().aggregate(&models).unwrap();
        for (x, y) in a.as_slice().iter().zip(b.as_slice()) {
            prop_assert!((x - y).abs() < 1e-4);
        }
    }

    /// Below or at the 2·trim quorum the adaptive filter refuses to
    /// aggregate rather than return a majority-Byzantine average.
    #[test]
    fn adaptive_rejects_sub_quorum_samples(
        trim in 1usize..4,
        extra in 0usize..3,
    ) {
        let rule = AdaptiveTrimmedMean::new(trim);
        let n_bad = (2 * trim).saturating_sub(extra).max(1);
        let bad: Vec<Tensor> = (0..n_bad).map(|i| Tensor::from_slice(&[i as f32])).collect();
        prop_assert!(rule.aggregate(&bad).is_err());
        let n_good = 2 * trim + 1;
        let good: Vec<Tensor> = (0..n_good).map(|i| Tensor::from_slice(&[i as f32])).collect();
        prop_assert!(rule.aggregate(&good).is_ok());
    }

    /// The blocked trimmed-mean kernel is bit-identical to the sort-based
    /// oracle — across federation sizes (both kernel strategies), trim
    /// rates, dimensions and the adversarial value pool (NaN, ±∞, signed
    /// zeros, duplicates). `to_bits` equality, not approximate.
    #[test]
    fn kernel_trimmed_mean_bit_identical_to_oracle(input in raw_models_and_trim()) {
        let (models, trim) = input;
        let views: Vec<&[f32]> = models.iter().map(Vec::as_slice).collect();
        let dim = views[0].len();
        let mut fast = vec![0.0f32; dim];
        let mut oracle = vec![0.0f32; dim];
        kernel::trimmed_mean(&views, trim, &mut fast);
        reference::trimmed_mean(&views, trim, &mut oracle);
        prop_assert_eq!(bits(&fast), bits(&oracle));
        // Both internal strategies must agree regardless of which one the
        // dispatch would pick for this P.
        let mut network = vec![0.0f32; dim];
        let mut selection = vec![0.0f32; dim];
        kernel::trimmed_mean_network(&views, trim, &mut network);
        kernel::trimmed_mean_selection(&views, trim, &mut selection);
        prop_assert_eq!(bits(&network), bits(&oracle));
        prop_assert_eq!(bits(&selection), bits(&oracle));
    }

    /// Same bit-exactness for the coordinate-median kernel.
    #[test]
    fn kernel_median_bit_identical_to_oracle(input in raw_models_and_trim()) {
        let (models, _) = input;
        let views: Vec<&[f32]> = models.iter().map(Vec::as_slice).collect();
        let dim = views[0].len();
        let mut fast = vec![0.0f32; dim];
        let mut oracle = vec![0.0f32; dim];
        kernel::coordinate_median(&views, &mut fast);
        reference::coordinate_median(&views, &mut oracle);
        prop_assert_eq!(bits(&fast), bits(&oracle));
    }
}

/// Structured worst-case inputs the random pool hits only rarely: fully
/// equal columns, globally sorted and reversed coordinates, and a dense
/// ±0.0 lattice. Swept across both kernel strategies and a block-crossing
/// dimension.
#[test]
fn kernel_matches_oracle_on_adversarial_patterns() {
    let dim = 300; // crosses the 256-coordinate block boundary
    for &n in &[3usize, 5, 10, 31, 32, 33, 40] {
        let patterns: Vec<(&str, Vec<Vec<f32>>)> = vec![
            ("all-equal", (0..n).map(|_| vec![7.25f32; dim]).collect()),
            ("sorted", (0..n).map(|j| (0..dim).map(|i| (j * dim + i) as f32).collect()).collect()),
            (
                "reversed",
                (0..n).map(|j| (0..dim).map(|i| -((j * dim + i) as f32)).collect()).collect(),
            ),
            (
                "signed-zeros",
                (0..n)
                    .map(|j| {
                        (0..dim).map(|i| if (i + j) % 2 == 0 { 0.0f32 } else { -0.0f32 }).collect()
                    })
                    .collect(),
            ),
            (
                "nan-and-inf-bands",
                (0..n)
                    .map(|j| {
                        (0..dim)
                            .map(|i| match (i + 3 * j) % 5 {
                                0 => f32::NAN,
                                1 => f32::INFINITY,
                                2 => f32::NEG_INFINITY,
                                _ => (i as f32) - (j as f32),
                            })
                            .collect()
                    })
                    .collect(),
            ),
        ];
        for (name, models) in patterns {
            let views: Vec<&[f32]> = models.iter().map(Vec::as_slice).collect();
            for trim in 0..=((n - 1) / 2).min(3) {
                let mut fast = vec![0.0f32; dim];
                let mut oracle = vec![0.0f32; dim];
                kernel::trimmed_mean(&views, trim, &mut fast);
                reference::trimmed_mean(&views, trim, &mut oracle);
                assert_eq!(bits(&fast), bits(&oracle), "{name} n={n} trim={trim}");
            }
            let mut fast = vec![0.0f32; dim];
            let mut oracle = vec![0.0f32; dim];
            kernel::coordinate_median(&views, &mut fast);
            reference::coordinate_median(&views, &mut oracle);
            assert_eq!(bits(&fast), bits(&oracle), "median {name} n={n}");
        }
    }
}
