//! Krum and Multi-Krum selection (Blanchard et al., NeurIPS 2017 —
//! reference [9] of the paper).

use fedms_tensor::Tensor;

use crate::rule::validate_models;
use crate::{AggError, AggregationRule, Result};

/// Computes each model's Krum score: the sum of its squared distances to
/// its `n − f − 2` nearest neighbours.
pub(crate) fn krum_scores(models: &[Tensor], f: usize) -> Result<Vec<f64>> {
    let n = models.len();
    let closest = n - f - 2;
    let mut dist2 = vec![vec![0.0f64; n]; n];
    for i in 0..n {
        for j in (i + 1)..n {
            let d = models[i].sub(&models[j])?.norm_l2_sq() as f64;
            dist2[i][j] = d;
            dist2[j][i] = d;
        }
    }
    let mut scores = Vec::with_capacity(n);
    for (i, row) in dist2.iter().enumerate() {
        let mut ds: Vec<f64> =
            row.iter().enumerate().filter(|&(j, _)| j != i).map(|(_, &d)| d).collect();
        ds.sort_by(f64::total_cmp);
        scores.push(ds[..closest].iter().sum());
    }
    Ok(scores)
}

fn check_count(n: usize, f: usize) -> Result<()> {
    // Krum requires n ≥ f + 3 so each model has n − f − 2 ≥ 1 neighbours.
    if n < f + 3 {
        return Err(AggError::TooFewModels { got: n, needed: f + 3 });
    }
    Ok(())
}

/// Krum: selects the single model with the smallest sum of squared
/// distances to its `n − f − 2` nearest neighbours.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Krum {
    num_byzantine: usize,
}

impl Krum {
    /// Creates the rule assuming at most `num_byzantine` malicious inputs.
    pub fn new(num_byzantine: usize) -> Self {
        Krum { num_byzantine }
    }

    /// The assumed Byzantine count `f`.
    pub fn num_byzantine(&self) -> usize {
        self.num_byzantine
    }
}

impl AggregationRule for Krum {
    fn name(&self) -> &'static str {
        "krum"
    }

    fn aggregate(&self, models: &[Tensor]) -> Result<Tensor> {
        validate_models(models)?;
        check_count(models.len(), self.num_byzantine)?;
        let scores = krum_scores(models, self.num_byzantine)?;
        let best = scores
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.total_cmp(b.1))
            .map(|(i, _)| i)
            .ok_or(AggError::Empty)?;
        Ok(models[best].clone())
    }
}

/// Multi-Krum: averages the `m` models with the best Krum scores.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MultiKrum {
    num_byzantine: usize,
    select: usize,
}

impl MultiKrum {
    /// Creates the rule: tolerate `num_byzantine` inputs, average the best
    /// `select` candidates.
    ///
    /// # Errors
    ///
    /// Returns [`AggError::BadParameter`] if `select == 0`.
    pub fn new(num_byzantine: usize, select: usize) -> Result<Self> {
        if select == 0 {
            return Err(AggError::BadParameter("must select at least one model".into()));
        }
        Ok(MultiKrum { num_byzantine, select })
    }
}

impl AggregationRule for MultiKrum {
    fn name(&self) -> &'static str {
        "multi_krum"
    }

    fn aggregate(&self, models: &[Tensor]) -> Result<Tensor> {
        validate_models(models)?;
        let n = models.len();
        check_count(n, self.num_byzantine)?;
        if self.select > n {
            return Err(AggError::TooFewModels { got: n, needed: self.select });
        }
        let scores = krum_scores(models, self.num_byzantine)?;
        let mut order: Vec<usize> = (0..n).collect();
        order.sort_by(|&a, &b| scores[a].total_cmp(&scores[b]));
        let chosen: Vec<Tensor> = order[..self.select].iter().map(|&i| models[i].clone()).collect();
        crate::Mean::new().aggregate(&chosen)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cluster_with_outlier() -> Vec<Tensor> {
        vec![
            Tensor::from_slice(&[1.0, 1.0]),
            Tensor::from_slice(&[1.1, 0.9]),
            Tensor::from_slice(&[0.9, 1.1]),
            Tensor::from_slice(&[1.05, 1.0]),
            Tensor::from_slice(&[100.0, -100.0]),
        ]
    }

    #[test]
    fn krum_picks_cluster_member() {
        let out = Krum::new(1).aggregate(&cluster_with_outlier()).unwrap();
        assert!(out.as_slice()[0] < 2.0, "Krum must not select the outlier");
    }

    #[test]
    fn krum_requires_enough_models() {
        let models = vec![Tensor::zeros(&[2]); 3];
        assert!(matches!(Krum::new(1).aggregate(&models), Err(AggError::TooFewModels { .. })));
        assert!(Krum::new(0).aggregate(&models).is_ok());
        assert_eq!(Krum::new(2).num_byzantine(), 2);
    }

    #[test]
    fn krum_identical_models_returns_them() {
        let models = vec![Tensor::from_slice(&[5.0]); 4];
        let out = Krum::new(1).aggregate(&models).unwrap();
        assert_eq!(out.as_slice(), &[5.0]);
    }

    #[test]
    fn multi_krum_averages_selection() {
        let out = MultiKrum::new(1, 3).unwrap().aggregate(&cluster_with_outlier()).unwrap();
        // Average of three cluster members stays near (1, 1).
        assert!((out.as_slice()[0] - 1.0).abs() < 0.2);
        assert!((out.as_slice()[1] - 1.0).abs() < 0.2);
    }

    #[test]
    fn multi_krum_validates() {
        assert!(MultiKrum::new(1, 0).is_err());
        let models = vec![Tensor::zeros(&[2]); 4];
        assert!(MultiKrum::new(1, 5).unwrap().aggregate(&models).is_err());
    }

    #[test]
    fn rejects_empty_and_mismatched() {
        assert!(Krum::new(0).aggregate(&[]).is_err());
        let mixed = vec![Tensor::zeros(&[2]), Tensor::zeros(&[3])];
        assert!(Krum::new(0).aggregate(&mixed).is_err());
    }

    #[test]
    fn nan_score_loses_to_every_finite_score() {
        // A NaN-poisoned model has NaN distances to everyone, so its Krum
        // score is NaN. total_cmp places NaN above all finite scores, so
        // neither Krum nor Multi-Krum can select it (the old partial_cmp
        // comparator made the winner depend on sort probe order).
        let mut models = cluster_with_outlier();
        models.push(Tensor::from_slice(&[f32::NAN, 1.0]));
        let out = Krum::new(1).aggregate(&models).unwrap();
        assert!(out.as_slice()[0].is_finite(), "Krum must never pick the NaN model");
        let out = MultiKrum::new(1, 3).unwrap().aggregate(&models).unwrap();
        assert!(out.as_slice()[0].is_finite(), "Multi-Krum must exclude the NaN model");
        assert!((out.as_slice()[0] - 1.0).abs() < 0.2);
    }
}
