//! Error type for aggregation rules.

use std::fmt;

use fedms_tensor::TensorError;

/// Errors produced by aggregation rules.
#[derive(Debug, Clone, PartialEq)]
pub enum AggError {
    /// An underlying tensor operation failed.
    Tensor(TensorError),
    /// No models were supplied.
    Empty,
    /// The supplied models do not all share one shape.
    ShapeDisagreement {
        /// Index of the first offending model.
        index: usize,
    },
    /// A rule parameter is invalid (trim rate, Byzantine count, …).
    BadParameter(String),
    /// Too few models for the rule's robustness requirement.
    TooFewModels {
        /// Models supplied.
        got: usize,
        /// Minimum the rule requires.
        needed: usize,
    },
}

impl fmt::Display for AggError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AggError::Tensor(e) => write!(f, "tensor error: {e}"),
            AggError::Empty => write!(f, "no models to aggregate"),
            AggError::ShapeDisagreement { index } => {
                write!(f, "model {index} has a different shape from model 0")
            }
            AggError::BadParameter(msg) => write!(f, "bad parameter: {msg}"),
            AggError::TooFewModels { got, needed } => {
                write!(f, "rule needs at least {needed} models, got {got}")
            }
        }
    }
}

impl std::error::Error for AggError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            AggError::Tensor(e) => Some(e),
            _ => None,
        }
    }
}

impl From<TensorError> for AggError {
    fn from(e: TensorError) -> Self {
        AggError::Tensor(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_nonempty() {
        for e in [
            AggError::Tensor(TensorError::Empty("x")),
            AggError::Empty,
            AggError::ShapeDisagreement { index: 3 },
            AggError::BadParameter("beta".into()),
            AggError::TooFewModels { got: 1, needed: 3 },
        ] {
            assert!(!e.to_string().is_empty());
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<AggError>();
    }
}
