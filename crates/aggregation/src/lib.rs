//! Robust aggregation rules for federated learning.
//!
//! The Fed-MS clients defend against Byzantine parameter servers with a
//! coordinate-wise **β-trimmed mean** ([`TrimmedMean`]) over the `P` global
//! models they receive each round (the paper's `trmean_β{·}` filter,
//! Algorithm 1 line 13). This crate implements that filter together with the
//! classic baselines the paper positions against:
//!
//! * [`Mean`] — plain FedAvg averaging (the "Vanilla FL" baseline),
//! * [`CoordinateMedian`] — coordinate-wise median (Yin et al., 2018),
//! * [`GeometricMedian`] — smoothed Weiszfeld iteration (Pillutla et al.),
//! * [`Krum`] / [`MultiKrum`] — distance-based selection (Blanchard et al.).
//!
//! All rules implement [`AggregationRule`] and operate on slices of
//! same-shape tensors (flat model parameter vectors in practice).
//!
//! The coordinate-wise rules (trimmed mean, median, Bulyan stage 2) run
//! on the blocked selection kernels in [`kernel`]; the historical
//! sort-per-coordinate code lives on in [`reference`] as the oracle the
//! kernels are property-tested against bit-for-bit.
//!
//! When the Byzantine count is unknown or time-varying, the online
//! [`ByzantineEstimator`] scores each server's disseminated model against
//! the median view and feeds [`AdaptiveTrimmedMean`] a per-round trim
//! count B̂.
//!
//! # Example
//!
//! ```
//! use fedms_aggregation::{AggregationRule, TrimmedMean};
//! use fedms_tensor::Tensor;
//!
//! // The paper's worked example: trmean_0.2{1,2,3,4,5} = 3.
//! let models: Vec<Tensor> =
//!     [1.0f32, 2.0, 3.0, 4.0, 5.0].iter().map(|&v| Tensor::from_slice(&[v])).collect();
//! let filtered = TrimmedMean::new(0.2)?.aggregate(&models)?;
//! assert_eq!(filtered.as_slice(), &[3.0]);
//! # Ok::<(), fedms_aggregation::AggError>(())
//! ```

mod bulyan;
mod clipping;
mod error;
mod estimate;
mod geomedian;
pub mod kernel;
mod krum;
mod mean;
mod median;
mod normbound;
pub mod reference;
mod rule;
mod trimmed;

pub use bulyan::Bulyan;
pub use clipping::CenteredClip;
pub use error::AggError;
pub use estimate::{ByzantineEstimator, Estimate, EstimatorPolicy};
pub use geomedian::GeometricMedian;
pub use krum::{Krum, MultiKrum};
pub use mean::{Mean, MeanAccumulator};
pub use median::CoordinateMedian;
pub use normbound::NormBound;
pub use rule::AggregationRule;
pub use trimmed::{trimmed_mean_scalars, AdaptiveTrimmedMean, TrimmedMean};

/// Crate-wide `Result` alias using [`AggError`].
pub type Result<T> = std::result::Result<T, AggError>;
