//! Smoothed geometric median via the Weiszfeld iteration (Pillutla et al.,
//! 2022 — reference [7]/[8] of the paper).

use fedms_tensor::Tensor;

use crate::rule::validate_models;
use crate::{AggError, AggregationRule, Result};

/// The geometric median: the point minimising the sum of Euclidean
/// distances to the models, computed by damped Weiszfeld fixed-point
/// iteration with an `ε` smoothing floor to avoid division blow-ups when the
/// iterate lands on a model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GeometricMedian {
    max_iters: usize,
    tolerance: f32,
    epsilon: f32,
}

impl Default for GeometricMedian {
    fn default() -> Self {
        GeometricMedian { max_iters: 64, tolerance: 1e-6, epsilon: 1e-8 }
    }
}

impl GeometricMedian {
    /// Creates the rule with default iteration limits (64 iterations,
    /// tolerance 1e-6).
    pub fn new() -> Self {
        Self::default()
    }

    /// Overrides the iteration budget.
    ///
    /// # Errors
    ///
    /// Returns [`AggError::BadParameter`] for a zero iteration budget or
    /// non-positive tolerance.
    pub fn with_budget(max_iters: usize, tolerance: f32) -> Result<Self> {
        if max_iters == 0 {
            return Err(AggError::BadParameter("need at least one iteration".into()));
        }
        if !(tolerance.is_finite() && tolerance > 0.0) {
            return Err(AggError::BadParameter(format!("bad tolerance {tolerance}")));
        }
        Ok(GeometricMedian { max_iters, tolerance, epsilon: 1e-8 })
    }
}

impl AggregationRule for GeometricMedian {
    fn name(&self) -> &'static str {
        "geometric_median"
    }

    fn aggregate(&self, models: &[Tensor]) -> Result<Tensor> {
        let len = validate_models(models)?;
        // Start from the coordinate-wise mean.
        let mut current = crate::Mean::new().aggregate(models)?;
        let mut next = vec![0.0f64; len];
        for _ in 0..self.max_iters {
            next.iter_mut().for_each(|v| *v = 0.0);
            let mut weight_sum = 0.0f64;
            for m in models {
                let dist = m.sub(&current)?.norm_l2().max(self.epsilon) as f64;
                let w = 1.0 / dist;
                weight_sum += w;
                for (acc, &v) in next.iter_mut().zip(m.as_slice()) {
                    *acc += w * v as f64;
                }
            }
            let candidate: Vec<f32> = next.iter().map(|&v| (v / weight_sum) as f32).collect();
            let candidate = Tensor::from_vec(candidate, current.dims())?;
            let moved = candidate.sub(&current)?.norm_l2();
            current = candidate;
            if moved <= self.tolerance {
                break;
            }
        }
        Ok(current)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scalars(vs: &[f32]) -> Vec<Tensor> {
        vs.iter().map(|&v| Tensor::from_slice(&[v])).collect()
    }

    #[test]
    fn scalar_geometric_median_is_median() {
        let out = GeometricMedian::new().aggregate(&scalars(&[1.0, 2.0, 100.0])).unwrap();
        assert!((out.as_slice()[0] - 2.0).abs() < 0.1, "got {}", out.as_slice()[0]);
    }

    #[test]
    fn symmetric_cluster_converges_to_center() {
        let models = vec![
            Tensor::from_slice(&[1.0, 0.0]),
            Tensor::from_slice(&[-1.0, 0.0]),
            Tensor::from_slice(&[0.0, 1.0]),
            Tensor::from_slice(&[0.0, -1.0]),
        ];
        let out = GeometricMedian::new().aggregate(&models).unwrap();
        assert!(out.norm_l2() < 1e-4);
    }

    #[test]
    fn robust_to_single_far_outlier() {
        let mut models = vec![Tensor::from_slice(&[0.0, 0.0]); 6];
        models.push(Tensor::from_slice(&[1e6, 1e6]));
        let out = GeometricMedian::new().aggregate(&models).unwrap();
        assert!(out.norm_l2() < 1.0, "outlier pulled the median to {out}");
    }

    #[test]
    fn identical_models_are_fixed_point() {
        let models = vec![Tensor::from_slice(&[3.0, -1.0]); 5];
        let out = GeometricMedian::new().aggregate(&models).unwrap();
        assert!((out.as_slice()[0] - 3.0).abs() < 1e-5);
        assert!((out.as_slice()[1] + 1.0).abs() < 1e-5);
    }

    #[test]
    fn budget_validation() {
        assert!(GeometricMedian::with_budget(0, 1e-6).is_err());
        assert!(GeometricMedian::with_budget(10, 0.0).is_err());
        assert!(GeometricMedian::with_budget(10, f32::NAN).is_err());
        assert!(GeometricMedian::with_budget(10, 1e-6).is_ok());
    }

    #[test]
    fn rejects_bad_input() {
        assert!(GeometricMedian::new().aggregate(&[]).is_err());
    }
}
