//! Blocked, selection-based kernels for the coordinate-wise
//! order-statistics rules (trimmed mean, median, Bulyan's stage 2).
//!
//! # Layout
//!
//! Models arrive model-major: each of the `P` models is one contiguous
//! flat `f32` slice of `D` coordinates. The naive per-coordinate loop
//! (gather a `P`-length column, `sort_by`, average the kept band) touches
//! every model once per coordinate and pays a full stable sort — with its
//! comparator indirection and, for larger `P`, an internal allocation —
//! `D` times per aggregate call. These kernels instead walk coordinates
//! in cache-sized blocks of [`BLOCK_COORDS`]:
//!
//! * a **server-major scratch buffer** (thread-local, reused across
//!   calls — the hot loop never allocates) holds one block at a time,
//!   so every model's block slice is read contiguously exactly once;
//! * the per-coordinate order statistics are computed over the scratch
//!   with one of two strategies, both `O(P)` per coordinate:
//!   a **vectorized sorting network** over totally-ordered integer keys
//!   for small federations (`P ≤` [`NETWORK_MAX`], the common regime —
//!   the paper runs `P = 10`), and **selection**
//!   (`select_nth_unstable_by` on [`f32::total_cmp`]) for larger `P`;
//! * the kept band is accumulated in `f64` in ascending value order, the
//!   same order the sort-based oracle ([`crate::reference`]) sums in, so
//!   kernel outputs are **bit-identical** to the oracle — a property the
//!   proptest suite pins down to `to_bits` equality.
//!
//! # Total order
//!
//! All comparisons use the IEEE-754 `totalOrder` predicate
//! ([`f32::total_cmp`]): `-NaN < -∞ < … < -0.0 < +0.0 < … < +∞ < +NaN`.
//! The network path realizes the same order branchlessly by mapping each
//! `f32` bit pattern to a `u32` key whose unsigned order coincides with
//! `totalOrder` ([`encode_total_order`]), running Batcher's odd-even
//! merge network with `u32::min`/`u32::max` compare-exchanges (which the
//! compiler auto-vectorizes across the block), and decoding the band
//! back for the sum. Values comparing equal under `totalOrder` have
//! identical bit patterns, so the two strategies (and the oracle) agree
//! bitwise even on duplicates, signed zeros, infinities and NaNs.

use std::cell::RefCell;

/// Coordinates processed per block: `P × BLOCK_COORDS` keys stay within
/// L1/L2 for every realistic federation size (`P = 32` → 32 KiB of keys).
pub const BLOCK_COORDS: usize = 256;

/// Largest federation the sorting-network strategy is used for; beyond
/// this the per-column selection strategy wins (network size grows as
/// `P·log²P` while selection stays linear).
pub const NETWORK_MAX: usize = 32;

/// Reusable per-thread scratch for the blocked kernels.
struct Scratch {
    /// Server-major key block: row `j` holds model `j`'s
    /// totally-ordered `u32` keys for the current coordinate block.
    keys: Vec<u32>,
    /// Per-coordinate `f64` accumulators for the band sum.
    acc: Vec<f64>,
    /// Coordinate-major `f32` columns for the selection strategy
    /// (column `i` of the block occupies `cols[i·P .. (i+1)·P]`).
    cols: Vec<f32>,
    /// Cached Batcher network for the last-used `P` (`pairs_for` ≠ 0).
    pairs: Vec<(usize, usize)>,
    pairs_for: usize,
}

impl Scratch {
    const fn new() -> Self {
        Scratch {
            keys: Vec::new(),
            acc: Vec::new(),
            cols: Vec::new(),
            pairs: Vec::new(),
            pairs_for: 0,
        }
    }
}

thread_local! {
    static SCRATCH: RefCell<Scratch> = const { RefCell::new(Scratch::new()) };
}

/// Maps an `f32` bit pattern to a `u32` whose unsigned order is exactly
/// the IEEE-754 `totalOrder` of the original float (the order
/// [`f32::total_cmp`] implements). The map is a bijection, inverted by
/// [`decode_total_order`].
#[inline(always)]
fn encode_total_order(v: f32) -> u32 {
    let b = v.to_bits();
    // Negative floats (sign bit set) reverse and drop below positives;
    // positive floats shift above them.
    if b & 0x8000_0000 != 0 {
        !b
    } else {
        b | 0x8000_0000
    }
}

/// Inverse of [`encode_total_order`].
#[inline(always)]
fn decode_total_order(k: u32) -> f32 {
    let bits = if k & 0x8000_0000 != 0 { k ^ 0x8000_0000 } else { !k };
    f32::from_bits(bits)
}

/// Comparator pairs of Batcher's odd-even merge sorting network for `n`
/// inputs (the `n < 2^k` pruning is sound: comparators always move the
/// larger element to the higher index, so the virtual `+∞` padding
/// elements never leave the top positions and every pruned comparator is
/// a no-op).
fn batcher_pairs(n: usize, pairs: &mut Vec<(usize, usize)>) {
    pairs.clear();
    if n < 2 {
        return;
    }
    let t = n.next_power_of_two();
    let mut p = t >> 1;
    while p > 0 {
        let mut q = t >> 1;
        let mut r = 0;
        let mut d = p;
        loop {
            for i in 0..t.saturating_sub(d) {
                if i & p == r && i + d < n {
                    pairs.push((i, i + d));
                }
            }
            if q == p {
                break;
            }
            d = q - p;
            q >>= 1;
            r = p;
        }
        p >>= 1;
    }
}

/// Coordinate-wise β-trimmed mean over `models` (each a flat slice of
/// equal length), discarding `trim` entries per side of every coordinate
/// and averaging the rest into `out`.
///
/// Dispatches to the vectorized sorting-network strategy for
/// `P ≤ `[`NETWORK_MAX`] and to per-column selection otherwise; both are
/// bit-identical to [`crate::reference::trimmed_mean`].
///
/// # Panics
///
/// Panics if `models` is empty, slice lengths disagree with `out`, or
/// `models.len() <= 2·trim` — callers (the [`crate::AggregationRule`]
/// impls) validate these and return typed errors instead.
pub fn trimmed_mean(models: &[&[f32]], trim: usize, out: &mut [f32]) {
    if models.len() <= NETWORK_MAX {
        trimmed_mean_network(models, trim, out);
    } else {
        trimmed_mean_selection(models, trim, out);
    }
}

/// Checks the shared kernel preconditions and returns `(P, kept⁻¹)`.
fn check_inputs(models: &[&[f32]], trim: usize, out: &[f32]) -> (usize, f64) {
    let n = models.len();
    assert!(n > 2 * trim, "kernel needs more than 2·trim models (got {n}, trim {trim})");
    for m in models {
        assert_eq!(m.len(), out.len(), "model length disagrees with output length");
    }
    (n, 1.0 / (n - 2 * trim) as f64)
}

/// The sorting-network strategy of [`trimmed_mean`]: sorts all
/// [`BLOCK_COORDS`] columns of a block simultaneously by running the
/// network's compare-exchanges as `u32::min`/`u32::max` passes over
/// whole rows — branch-free, auto-vectorized, `O(P·log²P)` comparator
/// passes per block amortizing to a handful of instructions per
/// coordinate.
pub fn trimmed_mean_network(models: &[&[f32]], trim: usize, out: &mut [f32]) {
    let (n, inv) = check_inputs(models, trim, out);
    SCRATCH.with(|cell| {
        let s = &mut *cell.borrow_mut();
        if s.pairs_for != n {
            batcher_pairs(n, &mut s.pairs);
            s.pairs_for = n;
        }
        s.keys.resize(n * BLOCK_COORDS, 0);
        s.acc.resize(BLOCK_COORDS, 0.0);
        let mut d0 = 0usize;
        for out_block in out.chunks_mut(BLOCK_COORDS) {
            let c = out_block.len();
            // Load: one contiguous read per model, encoded to keys.
            for (j, m) in models.iter().enumerate() {
                let row = &mut s.keys[j * c..(j + 1) * c];
                for (slot, &v) in row.iter_mut().zip(&m[d0..d0 + c]) {
                    *slot = encode_total_order(v);
                }
            }
            // Sort all c columns at once: each comparator pair is one
            // min/max pass over two rows.
            for &(a, b) in &s.pairs {
                let (lo, hi) = s.keys.split_at_mut(b * c);
                let ra = &mut lo[a * c..a * c + c];
                let rb = &mut hi[..c];
                for (x, y) in ra.iter_mut().zip(rb.iter_mut()) {
                    let (mn, mx) = ((*x).min(*y), (*x).max(*y));
                    *x = mn;
                    *y = mx;
                }
            }
            // Band sum, rows in ascending order — the oracle's order.
            // `-0.0` is the IEEE additive identity (`x + -0.0 == x` for
            // every `x` including `-0.0`), and it is what
            // `Iterator::sum::<f64>` folds from — starting at `+0.0`
            // would turn an all-negative-zero band into `+0.0`.
            let acc = &mut s.acc[..c];
            acc.fill(-0.0);
            for j in trim..n - trim {
                let row = &s.keys[j * c..(j + 1) * c];
                for (slot, &k) in acc.iter_mut().zip(row) {
                    *slot += f64::from(decode_total_order(k));
                }
            }
            for (o, &sum) in out_block.iter_mut().zip(acc.iter()) {
                *o = canonical_nan((sum * inv) as f32);
            }
            d0 += c;
        }
    });
}

/// The selection strategy of [`trimmed_mean`]: per column, two
/// `select_nth_unstable_by` passes partition off the `trim` smallest and
/// largest in `O(P)`, and the kept band is ordered ascending for the
/// canonical `f64` sum.
pub fn trimmed_mean_selection(models: &[&[f32]], trim: usize, out: &mut [f32]) {
    let (n, inv) = check_inputs(models, trim, out);
    let kept = n - 2 * trim;
    for_columns(models, out, |col, o| {
        let band = if trim == 0 {
            &mut col[..]
        } else {
            // Partition the `trim` smallest to the front…
            col.select_nth_unstable_by(trim - 1, f32::total_cmp);
            let rest = &mut col[trim..];
            // …and the `trim` largest of the remainder to the back.
            rest.select_nth_unstable_by(kept - 1, f32::total_cmp);
            &mut rest[..kept]
        };
        // Ascending order makes the f64 accumulation canonical (matches
        // the full-sort oracle bitwise).
        band.sort_unstable_by(f32::total_cmp);
        let sum: f64 = band.iter().map(|&v| f64::from(v)).sum();
        *o = canonical_nan((sum * inv) as f32);
    });
}

/// Collapses an arithmetic-produced NaN to the canonical quiet NaN.
///
/// IEEE 754 (and LLVM's float semantics) leave the sign and payload of a
/// NaN produced by arithmetic unspecified, so two correct compilations
/// of the same band sum may disagree on the bits (e.g. `+∞ + -∞` yields
/// `-NaN` on x86 scalar adds but the operand NaN under a commuted
/// vector add). Pinning the result to [`f32::NAN`] keeps the
/// kernel/oracle bit-exactness contract meaningful even on poisoned
/// inputs. Selected elements (median of odd `P`) are still returned
/// verbatim — only arithmetic results pass through here.
#[inline]
pub(crate) fn canonical_nan(v: f32) -> f32 {
    if v.is_nan() {
        f32::NAN
    } else {
        v
    }
}

/// Coordinate-wise median (mean of the two central values for even `P`),
/// bit-identical to [`crate::reference::coordinate_median`].
///
/// # Panics
///
/// Panics if `models` is empty or slice lengths disagree with `out`.
pub fn coordinate_median(models: &[&[f32]], out: &mut [f32]) {
    let n = models.len();
    assert!(n > 0, "median kernel needs at least one model");
    for m in models {
        assert_eq!(m.len(), out.len(), "model length disagrees with output length");
    }
    if n <= NETWORK_MAX {
        // The trimmed-mean network with the tightest trim *is* the
        // median for odd P; even P needs the two central rows, so run a
        // dedicated band pass instead of reusing `trimmed_mean_network`.
        median_network(models, out);
    } else {
        for_columns(models, out, |col, o| {
            let upper = n / 2;
            let (left, mid, _) = col.select_nth_unstable_by(upper, f32::total_cmp);
            *o = if n % 2 == 1 {
                *mid
            } else {
                // The lower-middle is the max of the left partition.
                let lower = left.iter().copied().max_by(f32::total_cmp).expect("n ≥ 2");
                canonical_nan(0.5 * (lower + *mid))
            };
        });
    }
}

/// Network-strategy median: sort the block's columns, read the central
/// row(s).
fn median_network(models: &[&[f32]], out: &mut [f32]) {
    let n = models.len();
    SCRATCH.with(|cell| {
        let s = &mut *cell.borrow_mut();
        if s.pairs_for != n {
            batcher_pairs(n, &mut s.pairs);
            s.pairs_for = n;
        }
        s.keys.resize(n * BLOCK_COORDS, 0);
        let mut d0 = 0usize;
        for out_block in out.chunks_mut(BLOCK_COORDS) {
            let c = out_block.len();
            for (j, m) in models.iter().enumerate() {
                let row = &mut s.keys[j * c..(j + 1) * c];
                for (slot, &v) in row.iter_mut().zip(&m[d0..d0 + c]) {
                    *slot = encode_total_order(v);
                }
            }
            for &(a, b) in &s.pairs {
                let (lo, hi) = s.keys.split_at_mut(b * c);
                let ra = &mut lo[a * c..a * c + c];
                let rb = &mut hi[..c];
                for (x, y) in ra.iter_mut().zip(rb.iter_mut()) {
                    let (mn, mx) = ((*x).min(*y), (*x).max(*y));
                    *x = mn;
                    *y = mx;
                }
            }
            let upper = &s.keys[(n / 2) * c..(n / 2 + 1) * c];
            if n % 2 == 1 {
                for (o, &k) in out_block.iter_mut().zip(upper) {
                    *o = decode_total_order(k);
                }
            } else {
                let lower = &s.keys[(n / 2 - 1) * c..(n / 2) * c];
                for ((o, &ku), &kl) in out_block.iter_mut().zip(upper).zip(lower) {
                    *o = canonical_nan(0.5 * (decode_total_order(kl) + decode_total_order(ku)));
                }
            }
            d0 += c;
        }
    });
}

/// Runs `f` over every coordinate's sorted (by `totalOrder`) column,
/// gathered blockwise through the reused scratch — the shared column
/// path for rules that need full per-coordinate order statistics
/// (Bulyan's stage 2). `f` receives the flat coordinate index and the
/// ascending column.
///
/// # Panics
///
/// Panics if `models` is empty or slice lengths disagree with `len`.
pub fn for_sorted_columns(models: &[&[f32]], len: usize, mut f: impl FnMut(usize, &[f32])) {
    let n = models.len();
    assert!(n > 0, "column path needs at least one model");
    for m in models {
        assert_eq!(m.len(), len, "model length disagrees");
    }
    SCRATCH.with(|cell| {
        let s = &mut *cell.borrow_mut();
        s.cols.resize(BLOCK_COORDS * n, 0.0);
        let mut d0 = 0usize;
        while d0 < len {
            let c = BLOCK_COORDS.min(len - d0);
            gather_columns(models, d0, c, &mut s.cols);
            for i in 0..c {
                let col = &mut s.cols[i * n..(i + 1) * n];
                col.sort_unstable_by(f32::total_cmp);
                f(d0 + i, col);
            }
            d0 += c;
        }
    });
}

/// Runs `per_column` over every coordinate's (unordered) column gathered
/// into the reused coordinate-major scratch; writes its result to `out`.
fn for_columns(
    models: &[&[f32]],
    out: &mut [f32],
    mut per_column: impl FnMut(&mut [f32], &mut f32),
) {
    let n = models.len();
    SCRATCH.with(|cell| {
        let s = &mut *cell.borrow_mut();
        s.cols.resize(BLOCK_COORDS * n, 0.0);
        let mut d0 = 0usize;
        for out_block in out.chunks_mut(BLOCK_COORDS) {
            let c = out_block.len();
            gather_columns(models, d0, c, &mut s.cols);
            for (i, o) in out_block.iter_mut().enumerate() {
                per_column(&mut s.cols[i * n..(i + 1) * n], o);
            }
            d0 += c;
        }
    });
}

/// Transposes the coordinate block `[d0, d0 + c)` of `models` into
/// coordinate-major columns: `cols[i·P + j] = models[j][d0 + i]`. Each
/// model's block slice is read contiguously once.
fn gather_columns(models: &[&[f32]], d0: usize, c: usize, cols: &mut [f32]) {
    let n = models.len();
    for (j, m) in models.iter().enumerate() {
        for (i, &v) in m[d0..d0 + c].iter().enumerate() {
            cols[i * n + j] = v;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn total_order_key_is_monotone_bijection() {
        let samples = [
            f32::NEG_INFINITY,
            -1e30,
            -1.0,
            -f32::MIN_POSITIVE,
            -0.0,
            0.0,
            f32::MIN_POSITIVE,
            1.0,
            1e30,
            f32::INFINITY,
            f32::NAN,
            -f32::NAN,
        ];
        for &a in &samples {
            // Bijection: decode(encode(x)) is bit-identical to x.
            assert_eq!(decode_total_order(encode_total_order(a)).to_bits(), a.to_bits());
            for &b in &samples {
                // Monotone: key order ⇔ total_cmp order.
                assert_eq!(
                    encode_total_order(a).cmp(&encode_total_order(b)),
                    a.total_cmp(&b),
                    "key order diverged from total_cmp for {a} vs {b}"
                );
            }
        }
    }

    #[test]
    fn batcher_network_sorts_every_size() {
        let mut pairs = Vec::new();
        for n in 1..=33usize {
            batcher_pairs(n, &mut pairs);
            // Exhaustive 0/1 principle is overkill here; a dense battery
            // of adversarial permutations still catches wiring bugs.
            for seed in 0..40u64 {
                let mut v: Vec<u32> =
                    (0..n).map(|i| ((i as u64 * 2654435761 + seed * 40503) % 97) as u32).collect();
                if seed % 3 == 0 {
                    v.reverse();
                }
                for &(a, b) in &pairs {
                    if v[a] > v[b] {
                        v.swap(a, b);
                    }
                }
                assert!(v.windows(2).all(|w| w[0] <= w[1]), "network failed for n={n}");
            }
        }
    }

    #[test]
    fn network_and_selection_agree_bitwise() {
        let models: Vec<Vec<f32>> = (0..10)
            .map(|j| (0..777).map(|i| ((i * 31 + j * 17) % 101) as f32 - 50.0).collect())
            .collect();
        let views: Vec<&[f32]> = models.iter().map(|m| m.as_slice()).collect();
        let mut a = vec![0.0f32; 777];
        let mut b = vec![0.0f32; 777];
        trimmed_mean_network(&views, 2, &mut a);
        trimmed_mean_selection(&views, 2, &mut b);
        let (ab, bb): (Vec<u32>, Vec<u32>) =
            (a.iter().map(|v| v.to_bits()).collect(), b.iter().map(|v| v.to_bits()).collect());
        assert_eq!(ab, bb);
    }

    #[test]
    #[should_panic(expected = "more than 2·trim")]
    fn rejects_over_trimming() {
        let m = [1.0f32, 2.0];
        let views: Vec<&[f32]> = vec![&m, &m];
        let mut out = vec![0.0f32; 2];
        trimmed_mean(&views, 1, &mut out);
    }
}
