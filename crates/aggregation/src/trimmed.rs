//! The coordinate-wise β-trimmed mean — Fed-MS's model filter.

use fedms_tensor::Tensor;
use serde::{Deserialize, Serialize};

use crate::rule::validate_models;
use crate::{kernel, AggError, AggregationRule, Result};

/// Trimmed mean of a scalar sample: drops the `trim` smallest and `trim`
/// largest values (under the [`f32::total_cmp`] total order, so NaNs sort
/// to the extremes and are trimmed first), then averages the rest.
/// Exposed for the Lemma-2 experiment, which studies the scalar case
/// directly.
///
/// # Errors
///
/// Returns [`AggError::TooFewModels`] if fewer than `2·trim + 1` values
/// are supplied — including for the empty sample and for `trim` so large
/// that `2·trim + 1` overflows `usize`.
pub fn trimmed_mean_scalars(values: &[f32], trim: usize) -> Result<f32> {
    let needed = trim
        .checked_mul(2)
        .and_then(|t| t.checked_add(1))
        .ok_or(AggError::TooFewModels { got: values.len(), needed: usize::MAX })?;
    if values.len() < needed {
        return Err(AggError::TooFewModels { got: values.len(), needed });
    }
    let mut sorted = values.to_vec();
    sorted.sort_by(f32::total_cmp);
    let kept = &sorted[trim..sorted.len() - trim];
    Ok((kept.iter().map(|&v| f64::from(v)).sum::<f64>() / kept.len() as f64) as f32)
}

/// Shared body of the two trimmed-mean rules: validates, then runs the
/// blocked O(P) kernel ([`kernel::trimmed_mean`]).
fn trimmed_aggregate(models: &[Tensor], trim: usize) -> Result<Tensor> {
    let len = validate_models(models)?;
    let n = models.len();
    if n <= 2 * trim {
        return Err(AggError::TooFewModels { got: n, needed: 2 * trim + 1 });
    }
    let views: Vec<&[f32]> = models.iter().map(Tensor::as_slice).collect();
    let mut out = vec![0.0f32; len];
    kernel::trimmed_mean(&views, trim, &mut out);
    Ok(Tensor::from_vec(out, models[0].dims())?)
}

/// Coordinate-wise β-trimmed mean (the paper's `trmean_β{·}`, Algorithm 1
/// line 13).
///
/// In every dimension the `⌊β·P⌋` largest and `⌊β·P⌋` smallest entries are
/// discarded and the rest averaged. With `β = B/P` this tolerates up to `B`
/// Byzantine servers per dimension (Lemma 2 bounds the residual error by
/// `4P/(P−2B)² · η²E²G²`).
///
/// The paper's experiments use `β = 0.2` (Fed-MS) and `β = 0.1`
/// (Fed-MS⁻, an intentionally under-trimmed ablation).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TrimmedMean {
    beta: f64,
}

impl TrimmedMean {
    /// Creates the filter with trim rate `beta ∈ [0, 0.5)`.
    ///
    /// # Errors
    ///
    /// Returns [`AggError::BadParameter`] for `beta` outside `[0, 0.5)` or
    /// non-finite.
    pub fn new(beta: f64) -> Result<Self> {
        if !(beta.is_finite() && (0.0..0.5).contains(&beta)) {
            return Err(AggError::BadParameter(format!(
                "trim rate must be in [0, 0.5), got {beta}"
            )));
        }
        Ok(TrimmedMean { beta })
    }

    /// The trim rate β.
    pub fn beta(&self) -> f64 {
        self.beta
    }

    /// Number of entries trimmed from *each* side for `n` models.
    pub fn trim_count(&self, n: usize) -> usize {
        (self.beta * n as f64).floor() as usize
    }
}

/// Coordinate-wise trimmed mean that discards a *fixed count* `b` per side,
/// independent of how many models actually arrive.
///
/// [`TrimmedMean`] fixes the trim *rate* β and derives the count `⌊β·n⌋`
/// from the sample size, which under-trims when servers crash: with
/// `P = 10`, `B = 2` and two crashed servers only `P' = 8` models arrive
/// and `⌊0.2·8⌋ = 1 < B`. This rule instead pins the count to the known
/// Byzantine bound `B`, so the effective rate β' = B/P' *rises* as the
/// sample shrinks and up to `B` adversarial entries per dimension are
/// always discarded. Aggregation stays sound until `P' ≤ 2B`, where no
/// honest majority remains per coordinate and the rule reports
/// [`AggError::TooFewModels`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct AdaptiveTrimmedMean {
    trim: usize,
}

impl AdaptiveTrimmedMean {
    /// Creates the filter trimming exactly `trim` entries from each side.
    pub fn new(trim: usize) -> Self {
        AdaptiveTrimmedMean { trim }
    }

    /// The fixed per-side trim count.
    pub fn trim(&self) -> usize {
        self.trim
    }

    /// The smallest sample size this rule accepts (`2·trim + 1`).
    pub fn min_models(&self) -> usize {
        2 * self.trim + 1
    }
}

impl AggregationRule for AdaptiveTrimmedMean {
    fn name(&self) -> &'static str {
        "adaptive_trimmed_mean"
    }

    fn aggregate(&self, models: &[Tensor]) -> Result<Tensor> {
        trimmed_aggregate(models, self.trim)
    }
}

impl AggregationRule for TrimmedMean {
    fn name(&self) -> &'static str {
        "trimmed_mean"
    }

    fn aggregate(&self, models: &[Tensor]) -> Result<Tensor> {
        trimmed_aggregate(models, self.trim_count(models.len()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scalars(vs: &[f32]) -> Vec<Tensor> {
        vs.iter().map(|&v| Tensor::from_slice(&[v])).collect()
    }

    #[test]
    fn validates_beta() {
        assert!(TrimmedMean::new(-0.1).is_err());
        assert!(TrimmedMean::new(0.5).is_err());
        assert!(TrimmedMean::new(f64::NAN).is_err());
        assert!(TrimmedMean::new(0.0).is_ok());
        assert!(TrimmedMean::new(0.49).is_ok());
    }

    #[test]
    fn papers_worked_example() {
        // trmean_0.2{1,2,3,4,5} = (2+3+4)/3 = 3 (Section IV-B).
        let out = TrimmedMean::new(0.2).unwrap().aggregate(&scalars(&[1.0, 2.0, 3.0, 4.0, 5.0]));
        assert_eq!(out.unwrap().as_slice(), &[3.0]);
    }

    #[test]
    fn beta_zero_equals_mean() {
        let models = scalars(&[1.0, 2.0, 6.0]);
        let out = TrimmedMean::new(0.0).unwrap().aggregate(&models).unwrap();
        assert_eq!(out.as_slice(), &[3.0]);
    }

    #[test]
    fn trim_count_floor() {
        let t = TrimmedMean::new(0.2).unwrap();
        assert_eq!(t.trim_count(10), 2);
        assert_eq!(t.trim_count(5), 1);
        assert_eq!(t.trim_count(4), 0);
        assert_eq!(t.beta(), 0.2);
    }

    #[test]
    fn robust_to_extreme_outliers() {
        // 8 honest models at 1.0, 2 Byzantine at ±1e9; β=0.2 trims them.
        let mut vs = vec![1.0f32; 8];
        vs.push(1e9);
        vs.push(-1e9);
        let out = TrimmedMean::new(0.2).unwrap().aggregate(&scalars(&vs)).unwrap();
        assert_eq!(out.as_slice(), &[1.0]);
    }

    #[test]
    fn trims_per_dimension_independently() {
        // Byzantine model is extreme in dim 0 only; dim 1 honest.
        let models = vec![
            Tensor::from_slice(&[0.0, 0.0]),
            Tensor::from_slice(&[1.0, 1.0]),
            Tensor::from_slice(&[2.0, 2.0]),
            Tensor::from_slice(&[3.0, 3.0]),
            Tensor::from_slice(&[1e9, 2.0]),
        ];
        let out = TrimmedMean::new(0.2).unwrap().aggregate(&models).unwrap();
        assert_eq!(out.as_slice()[0], 2.0); // (1+2+3)/3
        assert_eq!(out.as_slice()[1], (1.0 + 2.0 + 2.0) / 3.0);
    }

    #[test]
    fn small_samples_degrade_to_mean() {
        // β < 0.5 guarantees 2·⌊βn⌋ < n, so any non-empty sample is valid;
        // when ⌊βn⌋ = 0 the rule degrades gracefully to the plain mean.
        let out = TrimmedMean::new(0.4).unwrap().aggregate(&scalars(&[1.0, 2.0])).unwrap();
        assert_eq!(out.as_slice(), &[1.5]);
        // 0.4 · 3 → trim 1 per side, keep the median.
        let out = TrimmedMean::new(0.4).unwrap().aggregate(&scalars(&[1.0, 2.0, 9.0])).unwrap();
        assert_eq!(out.as_slice(), &[2.0]);
    }

    #[test]
    fn scalar_helper_matches_rule() {
        let vs = [5.0f32, -2.0, 8.0, 0.0, 3.0, 7.0, 1.0];
        let a = trimmed_mean_scalars(&vs, 2).unwrap();
        let models = scalars(&vs);
        // trim 2 of 7 → β must satisfy floor(7β) == 2; β = 0.3.
        let b = TrimmedMean::new(0.3).unwrap().aggregate(&models).unwrap().as_slice()[0];
        assert!((a - b).abs() < 1e-6);
        assert!(trimmed_mean_scalars(&vs, 3).is_ok());
        assert!(trimmed_mean_scalars(&vs, 4).is_err());
    }

    #[test]
    fn adaptive_trims_fixed_count_regardless_of_sample_size() {
        let rule = AdaptiveTrimmedMean::new(2);
        assert_eq!(rule.trim(), 2);
        assert_eq!(rule.min_models(), 5);
        // Full federation: 8 honest at 1.0 plus two extremes; trims both.
        let mut vs = vec![1.0f32; 8];
        vs.push(1e9);
        vs.push(-1e9);
        let out = rule.aggregate(&scalars(&vs)).unwrap();
        assert_eq!(out.as_slice(), &[1.0]);
        // Degraded federation: 3 of 8 honest servers crashed, the two
        // Byzantine extremes still present. A rate-based β = 0.2 would trim
        // only ⌊0.2·7⌋ = 1 per side; the fixed count still removes both.
        let mut degraded = vec![1.0f32; 5];
        degraded.push(1e9);
        degraded.push(-1e9);
        let out = rule.aggregate(&scalars(&degraded)).unwrap();
        assert_eq!(out.as_slice(), &[1.0]);
    }

    #[test]
    fn adaptive_errors_at_quorum_boundary() {
        let rule = AdaptiveTrimmedMean::new(2);
        // Exactly 2·B + 1 = 5 models: the boundary case still succeeds.
        let out = rule.aggregate(&scalars(&[1.0, 2.0, 3.0, 4.0, 5.0])).unwrap();
        assert_eq!(out.as_slice(), &[3.0]);
        // 2·B = 4 models: no honest majority per coordinate remains.
        let err = rule.aggregate(&scalars(&[1.0, 2.0, 3.0, 4.0])).unwrap_err();
        match err {
            AggError::TooFewModels { got, needed } => {
                assert_eq!(got, 4);
                assert_eq!(needed, 5);
            }
            other => panic!("expected TooFewModels, got {other:?}"),
        }
    }

    #[test]
    fn adaptive_zero_trim_is_plain_mean() {
        let rule = AdaptiveTrimmedMean::new(0);
        let out = rule.aggregate(&scalars(&[1.0, 2.0, 6.0])).unwrap();
        assert_eq!(out.as_slice(), &[3.0]);
        assert!(rule.aggregate(&[]).is_err());
    }

    #[test]
    fn adaptive_matches_rate_based_on_full_federation() {
        // On the nominal P = 10, β = 0.2 federation both rules trim 2/side.
        let vs = [5.0f32, -2.0, 8.0, 0.0, 3.0, 7.0, 1.0, 4.0, -9.0, 12.0];
        let models = scalars(&vs);
        let a = AdaptiveTrimmedMean::new(2).aggregate(&models).unwrap();
        let b = TrimmedMean::new(0.2).unwrap().aggregate(&models).unwrap();
        assert_eq!(a.as_slice(), b.as_slice());
    }

    #[test]
    fn adaptive_serde_roundtrip() {
        let rule = AdaptiveTrimmedMean::new(3);
        let json = serde_json::to_string(&rule).unwrap();
        let back: AdaptiveTrimmedMean = serde_json::from_str(&json).unwrap();
        assert_eq!(rule, back);
    }

    #[test]
    fn scalar_helper_edge_cases_are_typed_errors() {
        // Empty input: even trim = 0 needs one value.
        match trimmed_mean_scalars(&[], 0).unwrap_err() {
            AggError::TooFewModels { got, needed } => {
                assert_eq!((got, needed), (0, 1));
            }
            other => panic!("expected TooFewModels, got {other:?}"),
        }
        // 2·trim >= len: the boundary and everything below it.
        assert!(trimmed_mean_scalars(&[1.0, 2.0, 3.0, 4.0], 2).is_err());
        assert!(trimmed_mean_scalars(&[1.0, 2.0, 3.0], 2).is_err());
        assert_eq!(trimmed_mean_scalars(&[1.0, 2.0, 3.0, 4.0, 5.0], 2).unwrap(), 3.0);
        // trim = 0 is the plain mean, down to a single value.
        assert_eq!(trimmed_mean_scalars(&[7.5], 0).unwrap(), 7.5);
        assert_eq!(trimmed_mean_scalars(&[1.0, 2.0, 6.0], 0).unwrap(), 3.0);
        // Absurd trim counts must not overflow `2·trim + 1` into a panic.
        match trimmed_mean_scalars(&[1.0, 2.0], usize::MAX / 2 + 1).unwrap_err() {
            AggError::TooFewModels { got, .. } => assert_eq!(got, 2),
            other => panic!("expected TooFewModels, got {other:?}"),
        }
    }

    #[test]
    fn nan_sorts_to_the_extreme_and_is_trimmed_first() {
        // Pinned total_cmp behaviour: +NaN is the largest value, so one
        // trimmed slot per side removes it before any honest value.
        let out = trimmed_mean_scalars(&[1.0, 2.0, 3.0, 4.0, f32::NAN], 1).unwrap();
        assert_eq!(out, 3.0); // band {2, 3, 4}
        let out = trimmed_mean_scalars(&[-f32::NAN, 1.0, 2.0, 3.0, f32::NAN], 1).unwrap();
        assert_eq!(out, 2.0); // -NaN lowest, +NaN highest, band {1, 2, 3}
                              // An untrimmed NaN propagates (and does so deterministically).
        assert!(trimmed_mean_scalars(&[1.0, f32::NAN, 3.0], 0).unwrap().is_nan());
    }

    #[test]
    fn infinities_and_duplicates_are_pinned() {
        // ±inf sort inside NaN, outside all finite values.
        let out = trimmed_mean_scalars(&[f32::NEG_INFINITY, 1.0, 2.0, 3.0, f32::INFINITY], 1);
        assert_eq!(out.unwrap(), 2.0);
        // Duplicates: trimming removes *slots*, not distinct values.
        let out = trimmed_mean_scalars(&[5.0, 5.0, 5.0, 5.0, 5.0], 2).unwrap();
        assert_eq!(out, 5.0);
        // Signed zeros are ordered (-0.0 < +0.0); the band {-0.0, 0.0,
        // 0.0} sums to +0.0.
        let out = trimmed_mean_scalars(&[-0.0, 0.0, -0.0, 0.0, 1.0], 1).unwrap();
        assert_eq!(out, 0.0);
        assert!(out.is_sign_positive());
        let rule = TrimmedMean::new(0.2).unwrap();
        let models = scalars(&[1.0, 2.0, 3.0, 4.0, f32::NAN]);
        assert_eq!(rule.aggregate(&models).unwrap().as_slice(), &[3.0]);
    }

    #[test]
    fn adaptive_degraded_quorum_boundary_is_a_typed_error_not_a_panic() {
        let rule = AdaptiveTrimmedMean::new(3);
        // Walk the whole degraded range below the 2·trim + 1 quorum.
        for n in 0..=6usize {
            let models = scalars(&(0..n).map(|i| i as f32).collect::<Vec<_>>());
            let err = rule.aggregate(&models).unwrap_err();
            match err {
                AggError::TooFewModels { got, needed } => {
                    assert_eq!((got, needed), (n, 7));
                }
                AggError::Empty => assert_eq!(n, 0),
                other => panic!("expected a typed quorum error, got {other:?}"),
            }
        }
        // First size above the boundary succeeds.
        let models = scalars(&[0.0, 1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        assert_eq!(rule.aggregate(&models).unwrap().as_slice(), &[3.0]);
    }

    #[test]
    fn output_bounded_by_honest_range_when_minority_byzantine() {
        // Lemma-2 style guarantee: with trim ≥ B, the trimmed mean lies
        // within the honest values' range.
        let honest = [0.5f32, 1.0, 1.5, 2.0, 2.5, 3.0, 3.5, 4.0];
        let mut vs = honest.to_vec();
        vs.push(1e6);
        vs.push(-1e6);
        let out = trimmed_mean_scalars(&vs, 2).unwrap();
        assert!((0.5..=4.0).contains(&out));
    }
}
