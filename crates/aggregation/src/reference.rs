//! Sort-based reference implementations — the oracle the blocked kernels
//! in [`crate::kernel`] are property-tested against.
//!
//! These keep the original per-coordinate shape (gather a column, sort
//! it in full, reduce) with two deliberate changes from the historical
//! code: the comparator is [`f32::total_cmp`] instead of the NaN-unsound
//! `partial_cmp(..).unwrap_or(Equal)`, so NaN and signed zeros have one
//! pinned, documented position (`-NaN < -∞ < … < -0.0 < +0.0 < … < +∞ <
//! +NaN`) instead of an order that depended on where the sort happened
//! to probe; and an arithmetic result that comes out NaN is collapsed to
//! the canonical [`f32::NAN`] (IEEE leaves the sign/payload of such NaNs
//! unspecified, so without the collapse two correct compilations could
//! legally disagree on the bits). The kernels reproduce these functions
//! bit-for-bit; the proptest suite (`tests/proptests.rs`) asserts
//! `to_bits` equality across federation sizes, trim rates and
//! adversarial value patterns.

use crate::kernel::canonical_nan;

/// Coordinate-wise trimmed mean, one full stable sort per coordinate.
/// Sums the kept band in ascending order in `f64` — the canonical
/// accumulation order the kernels replicate.
///
/// # Panics
///
/// Panics if `models` is empty, lengths disagree with `out`, or
/// `models.len() <= 2·trim` (callers validate first).
pub fn trimmed_mean(models: &[&[f32]], trim: usize, out: &mut [f32]) {
    let n = models.len();
    assert!(n > 2 * trim, "reference needs more than 2·trim models");
    let inv = 1.0 / (n - 2 * trim) as f64;
    let mut column = vec![0.0f32; n];
    for (d, o) in out.iter_mut().enumerate() {
        for (j, m) in models.iter().enumerate() {
            column[j] = m[d];
        }
        column.sort_by(f32::total_cmp);
        let sum: f64 = column[trim..n - trim].iter().map(|&v| f64::from(v)).sum();
        *o = canonical_nan((sum * inv) as f32);
    }
}

/// Coordinate-wise median, one full stable sort per coordinate.
///
/// # Panics
///
/// Panics if `models` is empty or lengths disagree with `out`.
pub fn coordinate_median(models: &[&[f32]], out: &mut [f32]) {
    let n = models.len();
    assert!(n > 0, "reference median needs at least one model");
    let mut column = vec![0.0f32; n];
    for (d, o) in out.iter_mut().enumerate() {
        for (j, m) in models.iter().enumerate() {
            column[j] = m[d];
        }
        column.sort_by(f32::total_cmp);
        *o = if n % 2 == 1 {
            column[n / 2]
        } else {
            canonical_nan(0.5 * (column[n / 2 - 1] + column[n / 2]))
        };
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_the_papers_worked_example() {
        let vals = [[1.0f32], [2.0], [3.0], [4.0], [5.0]];
        let views: Vec<&[f32]> = vals.iter().map(|v| v.as_slice()).collect();
        let mut out = [0.0f32];
        trimmed_mean(&views, 1, &mut out);
        assert_eq!(out, [3.0]);
        coordinate_median(&views, &mut out);
        assert_eq!(out, [3.0]);
    }

    #[test]
    fn nan_sorts_to_the_top_and_gets_trimmed() {
        let vals = [[1.0f32], [2.0], [3.0], [4.0], [f32::NAN]];
        let views: Vec<&[f32]> = vals.iter().map(|v| v.as_slice()).collect();
        let mut out = [0.0f32];
        trimmed_mean(&views, 1, &mut out);
        // total order: 1 2 3 4 NaN → band {2, 3, 4}.
        assert_eq!(out, [3.0]);
    }
}
