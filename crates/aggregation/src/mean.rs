//! Plain averaging (FedAvg / "Vanilla FL").

use fedms_tensor::Tensor;

use crate::rule::validate_models;
use crate::{AggregationRule, Result};

/// The arithmetic mean of all models — no Byzantine protection.
///
/// This is both what each benign PS computes over the client uploads it
/// receives (Algorithm 1 line 4) and the filter of the paper's "Vanilla FL"
/// baseline, whose accuracy collapses under server-side attacks (Fig. 2).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Mean;

impl Mean {
    /// Creates the rule.
    pub fn new() -> Self {
        Mean
    }
}

impl AggregationRule for Mean {
    fn name(&self) -> &'static str {
        "mean"
    }

    fn aggregate(&self, models: &[Tensor]) -> Result<Tensor> {
        let len = validate_models(models)?;
        let inv = 1.0 / models.len() as f32;
        let mut acc = vec![0.0f64; len];
        for m in models {
            for (a, &v) in acc.iter_mut().zip(m.as_slice()) {
                *a += v as f64;
            }
        }
        let data: Vec<f32> = acc.into_iter().map(|v| v as f32 * inv).collect();
        Ok(Tensor::from_vec(data, models[0].dims())?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn averages_elementwise() {
        let models = vec![Tensor::from_slice(&[1.0, 10.0]), Tensor::from_slice(&[3.0, 20.0])];
        let m = Mean::new().aggregate(&models).unwrap();
        assert_eq!(m.as_slice(), &[2.0, 15.0]);
    }

    #[test]
    fn single_model_is_identity() {
        let m = Tensor::from_slice(&[1.0, 2.0]);
        assert_eq!(Mean::new().aggregate(std::slice::from_ref(&m)).unwrap(), m);
    }

    #[test]
    fn preserves_shape() {
        let models = vec![Tensor::zeros(&[2, 3]); 4];
        assert_eq!(Mean::new().aggregate(&models).unwrap().dims(), &[2, 3]);
    }

    #[test]
    fn rejects_bad_input() {
        assert!(Mean::new().aggregate(&[]).is_err());
        assert!(Mean::new().aggregate(&[Tensor::zeros(&[2]), Tensor::zeros(&[3])]).is_err());
    }

    #[test]
    fn one_outlier_shifts_mean() {
        // Demonstrates the vulnerability trimmed mean fixes.
        let mut models = vec![Tensor::from_slice(&[1.0]); 9];
        models.push(Tensor::from_slice(&[1000.0]));
        let m = Mean::new().aggregate(&models).unwrap();
        assert!(m.as_slice()[0] > 100.0);
    }
}
