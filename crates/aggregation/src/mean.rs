//! Plain averaging (FedAvg / "Vanilla FL").

use fedms_tensor::Tensor;

use crate::rule::validate_models;
use crate::{AggError, AggregationRule, Result};

/// The arithmetic mean of all models — no Byzantine protection.
///
/// This is both what each benign PS computes over the client uploads it
/// receives (Algorithm 1 line 4) and the filter of the paper's "Vanilla FL"
/// baseline, whose accuracy collapses under server-side attacks (Fig. 2).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Mean;

impl Mean {
    /// Creates the rule.
    pub fn new() -> Self {
        Mean
    }
}

impl AggregationRule for Mean {
    fn name(&self) -> &'static str {
        "mean"
    }

    fn aggregate(&self, models: &[Tensor]) -> Result<Tensor> {
        let len = validate_models(models)?;
        let inv = 1.0 / models.len() as f32;
        let mut acc = vec![0.0f64; len];
        for m in models {
            for (a, &v) in acc.iter_mut().zip(m.as_slice()) {
                *a += v as f64;
            }
        }
        let data: Vec<f32> = acc.into_iter().map(|v| v as f32 * inv).collect();
        Ok(Tensor::from_vec(data, models[0].dims())?)
    }

    fn make_accumulator(&self) -> Option<MeanAccumulator> {
        Some(MeanAccumulator::new())
    }
}

/// A streaming equivalent of [`Mean::aggregate`].
///
/// Models are folded in one at a time, so a server's round can be
/// aggregated without ever materializing its full inbox — the property the
/// simulator's large-cohort path relies on. Bit-exactness contract: pushing
/// models `m₀ … mₙ₋₁` in order and calling [`MeanAccumulator::finish`]
/// produces exactly the tensor `Mean::new().aggregate(&[m₀ … mₙ₋₁])` would,
/// including `f64` summation order and the final `sum as f32 * (1/n)`
/// rounding.
#[derive(Debug, Clone, Default)]
pub struct MeanAccumulator {
    acc: Vec<f64>,
    dims: Vec<usize>,
    count: usize,
}

impl MeanAccumulator {
    /// Creates an empty accumulator; the first push fixes the shape.
    pub fn new() -> Self {
        MeanAccumulator::default()
    }

    /// Folds one model in.
    ///
    /// # Errors
    ///
    /// Returns [`AggError::ShapeDisagreement`] if `model`'s shape differs
    /// from the first pushed model's (the reported index is the position
    /// this push would have had in the batched slice).
    pub fn push(&mut self, model: &Tensor) -> Result<()> {
        if self.count == 0 {
            self.dims = model.dims().to_vec();
            self.acc = vec![0.0f64; model.len()];
        } else if model.dims() != self.dims.as_slice() {
            return Err(AggError::ShapeDisagreement { index: self.count });
        }
        for (a, &v) in self.acc.iter_mut().zip(model.as_slice()) {
            *a += v as f64;
        }
        self.count += 1;
        Ok(())
    }

    /// Models folded in so far.
    pub fn count(&self) -> usize {
        self.count
    }

    /// Reduces to the mean tensor.
    ///
    /// # Errors
    ///
    /// Returns [`AggError::Empty`] if nothing was pushed.
    pub fn finish(self) -> Result<Tensor> {
        if self.count == 0 {
            return Err(AggError::Empty);
        }
        let inv = 1.0 / self.count as f32;
        let data: Vec<f32> = self.acc.into_iter().map(|v| v as f32 * inv).collect();
        Ok(Tensor::from_vec(data, &self.dims)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn averages_elementwise() {
        let models = vec![Tensor::from_slice(&[1.0, 10.0]), Tensor::from_slice(&[3.0, 20.0])];
        let m = Mean::new().aggregate(&models).unwrap();
        assert_eq!(m.as_slice(), &[2.0, 15.0]);
    }

    #[test]
    fn single_model_is_identity() {
        let m = Tensor::from_slice(&[1.0, 2.0]);
        assert_eq!(Mean::new().aggregate(std::slice::from_ref(&m)).unwrap(), m);
    }

    #[test]
    fn preserves_shape() {
        let models = vec![Tensor::zeros(&[2, 3]); 4];
        assert_eq!(Mean::new().aggregate(&models).unwrap().dims(), &[2, 3]);
    }

    #[test]
    fn rejects_bad_input() {
        assert!(Mean::new().aggregate(&[]).is_err());
        assert!(Mean::new().aggregate(&[Tensor::zeros(&[2]), Tensor::zeros(&[3])]).is_err());
    }

    #[test]
    fn one_outlier_shifts_mean() {
        // Demonstrates the vulnerability trimmed mean fixes.
        let mut models = vec![Tensor::from_slice(&[1.0]); 9];
        models.push(Tensor::from_slice(&[1000.0]));
        let m = Mean::new().aggregate(&models).unwrap();
        assert!(m.as_slice()[0] > 100.0);
    }

    #[test]
    fn accumulator_matches_batch_bit_for_bit() {
        // Values chosen so f32 rounding is actually exercised.
        let models: Vec<Tensor> = (0..7)
            .map(|i| {
                let v: Vec<f32> =
                    (0..5).map(|j| ((i * 31 + j * 7) as f32).sin() * 1e3 + 0.1).collect();
                Tensor::from_vec(v, &[5]).unwrap()
            })
            .collect();
        let batched = Mean::new().aggregate(&models).unwrap();
        let mut acc = Mean::new().make_accumulator().unwrap();
        for m in &models {
            acc.push(m).unwrap();
        }
        assert_eq!(acc.count(), 7);
        let streamed = acc.finish().unwrap();
        assert_eq!(batched.dims(), streamed.dims());
        let same_bits = batched
            .as_slice()
            .iter()
            .zip(streamed.as_slice())
            .all(|(a, b)| a.to_bits() == b.to_bits());
        assert!(same_bits, "streamed mean must reproduce batched bits");
    }

    #[test]
    fn accumulator_rejects_empty_and_mismatched() {
        assert!(matches!(MeanAccumulator::new().finish(), Err(AggError::Empty)));
        let mut acc = MeanAccumulator::new();
        acc.push(&Tensor::zeros(&[2])).unwrap();
        assert!(matches!(
            acc.push(&Tensor::zeros(&[3])),
            Err(AggError::ShapeDisagreement { index: 1 })
        ));
    }

    #[test]
    fn accumulator_preserves_shape() {
        let mut acc = MeanAccumulator::new();
        for _ in 0..4 {
            acc.push(&Tensor::zeros(&[2, 3])).unwrap();
        }
        assert_eq!(acc.finish().unwrap().dims(), &[2, 3]);
    }
}
