//! Norm-bounding: a cheap pre-filter that caps each model's influence.

use fedms_tensor::Tensor;

use crate::rule::validate_models;
use crate::{AggError, AggregationRule, Result};

/// Norm-bounded averaging: every model is rescaled (if needed) so its L2
/// norm does not exceed `factor ×` the median model norm, then averaged.
///
/// A standard, cheap defence layer (used e.g. by production FL systems as
/// a first gate): it cannot stop direction-level attacks, but makes
/// magnitude-based blow-ups (Random, amplified updates) impossible.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NormBound {
    factor: f32,
}

impl NormBound {
    /// Creates the rule with a cap at `factor ×` the median norm.
    ///
    /// # Errors
    ///
    /// Returns [`AggError::BadParameter`] for non-positive or non-finite
    /// `factor`.
    pub fn new(factor: f32) -> Result<Self> {
        if !(factor.is_finite() && factor > 0.0) {
            return Err(AggError::BadParameter(format!(
                "norm-bound factor must be positive, got {factor}"
            )));
        }
        Ok(NormBound { factor })
    }

    /// The cap factor over the median norm.
    pub fn factor(&self) -> f32 {
        self.factor
    }
}

impl AggregationRule for NormBound {
    fn name(&self) -> &'static str {
        "norm_bound"
    }

    fn aggregate(&self, models: &[Tensor]) -> Result<Tensor> {
        validate_models(models)?;
        let mut norms: Vec<f32> = models.iter().map(Tensor::norm_l2).collect();
        norms.sort_by(f32::total_cmp);
        let n = norms.len();
        let median =
            if n % 2 == 1 { norms[n / 2] } else { 0.5 * (norms[n / 2 - 1] + norms[n / 2]) };
        let cap = self.factor * median;
        let bounded: Vec<Tensor> = models
            .iter()
            .map(|m| {
                let norm = m.norm_l2();
                if cap > 0.0 && norm > cap {
                    m.scaled(cap / norm)
                } else {
                    m.clone()
                }
            })
            .collect();
        crate::Mean::new().aggregate(&bounded)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scalars(vs: &[f32]) -> Vec<Tensor> {
        vs.iter().map(|&v| Tensor::from_slice(&[v])).collect()
    }

    #[test]
    fn validates_factor() {
        assert!(NormBound::new(0.0).is_err());
        assert!(NormBound::new(f32::NAN).is_err());
        assert_eq!(NormBound::new(2.0).unwrap().factor(), 2.0);
    }

    #[test]
    fn clean_inputs_pass_through_as_mean() {
        let models = scalars(&[1.0, 2.0, 3.0]);
        let out = NormBound::new(2.0).unwrap().aggregate(&models).unwrap();
        assert!((out.as_slice()[0] - 2.0).abs() < 1e-6);
    }

    #[test]
    fn magnitude_outlier_is_capped() {
        let mut vs = vec![1.0f32; 9];
        vs.push(1e9);
        let out = NormBound::new(2.0).unwrap().aggregate(&scalars(&vs)).unwrap();
        // The outlier contributes at most 2·median = 2 → mean ≤ (9 + 2)/10.
        assert!(out.as_slice()[0] <= 1.1 + 1e-5, "got {}", out.as_slice()[0]);
    }

    #[test]
    fn direction_attacks_pass_untouched() {
        // Sign-flipped model with honest magnitude is NOT caught — the
        // documented limitation versus trimming.
        let models = scalars(&[1.0, 1.0, 1.0, -1.0]);
        let out = NormBound::new(2.0).unwrap().aggregate(&models).unwrap();
        assert!((out.as_slice()[0] - 0.5).abs() < 1e-6);
    }

    #[test]
    fn all_zero_models_are_fixed_point() {
        let models = scalars(&[0.0; 5]);
        let out = NormBound::new(2.0).unwrap().aggregate(&models).unwrap();
        assert_eq!(out.as_slice(), &[0.0]);
    }

    #[test]
    fn rejects_bad_input() {
        assert!(NormBound::new(1.0).unwrap().aggregate(&[]).is_err());
    }

    #[test]
    fn nan_norm_sorts_above_all_finite_norms() {
        // A NaN-norm model lands at the top of the sorted norms under
        // total_cmp, so the median of five stays finite and the cap is
        // well-defined; the other honest models average cleanly in dim 1.
        let models = vec![
            Tensor::from_slice(&[1.0, 4.0]),
            Tensor::from_slice(&[2.0, 4.0]),
            Tensor::from_slice(&[3.0, 4.0]),
            Tensor::from_slice(&[4.0, 4.0]),
            Tensor::from_slice(&[f32::NAN, 4.0]),
        ];
        let out = NormBound::new(2.0).unwrap().aggregate(&models).unwrap();
        assert!(out.as_slice()[1].is_finite(), "cap must stay finite with one NaN norm");
    }
}
