//! Online estimation of the Byzantine server count B̂.
//!
//! Fed-MS's trimmed-mean filter needs the Byzantine bound `B` to pick its
//! trim radius, but at the edge `B` is unknown and time-varying: servers
//! get compromised mid-run and healed later. Following Chen et al.'s
//! analysis of the estimation trade-off (over-estimating B wastes honest
//! models and inflates variance; under-estimating admits adversarial
//! coordinates and biases the update), the [`ByzantineEstimator`] scores
//! each server's per-round aggregate against the coordinate-wise median of
//! all aggregates and maintains an exponentially decayed suspicion per
//! server:
//!
//! ```text
//! d_i  = mean_j |v_i[j] − med[j]|              (distance to the median view)
//! o_i  = 1  iff  d_i > scale · median_i(d_i)   (robust outlier test)
//! s_i ← decay · s_i + (1 − decay) · o_i        (confidence window)
//! b̂   = clamp(#{i : s_i > threshold}, floor, ceiling)
//! ```
//!
//! The decay window trades reaction speed against false-positive noise: a
//! single weird round moves `s_i` by only `1 − decay`, but a sustained
//! attack crosses `threshold` within a few rounds (with the defaults,
//! `0.4 + 0.4·0.6 > 0.5` — two consecutive outlier rounds convict).
//! Healing is symmetric: once a server stops lying, its suspicion decays
//! below the threshold and its models re-enter the mean.
//!
//! `b̂` feeds [`crate::AdaptiveTrimmedMean`] as the per-round trim count.
//! The ceiling defaults to `⌈P/2⌉ − 1`, the largest `b` for which a
//! `2b + 1` quorum can exist, so the estimator can never trim away an
//! honest majority.

use serde::{Deserialize, Serialize};

use crate::kernel;

/// Tuning knobs for the online B̂ estimator. Following the crate-wide
/// "0 = auto" convention (serde only defaults fields to zero), the window
/// parameters store `0.0` for "use the documented default" and expose the
/// resolved value through [`EstimatorPolicy::decay`] and friends. The
/// `Default` value is *disabled* with every knob on auto.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct EstimatorPolicy {
    /// Master switch. When `false` the engine keeps the static filter and
    /// instantiates no estimator at all (bit-identical runs).
    #[serde(default)]
    pub enabled: bool,
    /// Exponential decay of the suspicion window, in `(0, 1)`; `0.0` =
    /// auto (0.6). Higher = longer memory, slower reaction.
    #[serde(default)]
    pub decay: f64,
    /// Outlier test sensitivity — a server is an outlier when its distance
    /// exceeds `scale ×` the median distance; `0.0` = auto (3.0).
    #[serde(default)]
    pub scale: f64,
    /// Suspicion level above which a server counts toward B̂; `0.0` =
    /// auto (0.5).
    #[serde(default)]
    pub threshold: f64,
    /// Lower clamp on B̂ (trim at least this much even with no suspects).
    #[serde(default)]
    pub floor: usize,
    /// Upper clamp on B̂; `0` means automatic `⌈P/2⌉ − 1`.
    #[serde(default)]
    pub ceiling: usize,
}

impl EstimatorPolicy {
    /// An enabled policy with the default window.
    pub fn enabled() -> Self {
        EstimatorPolicy { enabled: true, ..EstimatorPolicy::default() }
    }

    /// The resolved suspicion decay (auto: 0.6).
    pub fn decay(&self) -> f64 {
        if self.decay == 0.0 {
            0.6
        } else {
            self.decay
        }
    }

    /// The resolved outlier sensitivity (auto: 3.0).
    pub fn scale(&self) -> f64 {
        if self.scale == 0.0 {
            3.0
        } else {
            self.scale
        }
    }

    /// The resolved conviction threshold (auto: 0.5).
    pub fn threshold(&self) -> f64 {
        if self.threshold == 0.0 {
            0.5
        } else {
            self.threshold
        }
    }

    /// The effective ceiling for a federation of `num_servers`: the
    /// configured one, or `⌈P/2⌉ − 1` when left at 0 (the largest trim
    /// that still leaves a `2b̂ + 1` quorum possible).
    pub fn effective_ceiling(&self, num_servers: usize) -> usize {
        if self.ceiling > 0 {
            self.ceiling
        } else {
            num_servers.div_ceil(2).saturating_sub(1)
        }
    }

    /// Validates the policy.
    ///
    /// # Errors
    ///
    /// Returns a description of the offending field.
    pub fn validate(&self) -> std::result::Result<(), String> {
        if !(self.decay.is_finite() && (0.0..1.0).contains(&self.decay)) {
            return Err(format!("estimator decay must be in [0, 1), got {}", self.decay));
        }
        if !(self.scale.is_finite() && self.scale >= 0.0) {
            return Err(format!("estimator scale must be non-negative, got {}", self.scale));
        }
        if !(self.threshold.is_finite() && (0.0..=1.0).contains(&self.threshold)) {
            return Err(format!("estimator threshold must be in [0, 1], got {}", self.threshold));
        }
        if self.ceiling > 0 && self.floor > self.ceiling {
            return Err(format!("estimator floor {} exceeds ceiling {}", self.floor, self.ceiling));
        }
        Ok(())
    }
}

/// Outcome of one [`ByzantineEstimator::observe`] call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Estimate {
    /// The clamped per-round trim count b̂.
    pub trim: usize,
    /// How many servers are currently over the suspicion threshold
    /// (before clamping).
    pub suspects: usize,
}

/// The online B̂ estimator: per-server exponentially decayed suspicion
/// driven by a median-distance outlier test over the per-server global
/// models observed each round.
#[derive(Debug, Clone, PartialEq)]
pub struct ByzantineEstimator {
    policy: EstimatorPolicy,
    num_servers: usize,
    suspicion: Vec<f64>,
    trim: usize,
}

impl ByzantineEstimator {
    /// Creates an estimator for a federation of `num_servers`, starting
    /// with zero suspicion everywhere and `trim = floor`.
    pub fn new(num_servers: usize, policy: EstimatorPolicy) -> Self {
        let trim = policy.floor.min(policy.effective_ceiling(num_servers));
        ByzantineEstimator { policy, num_servers, suspicion: vec![0.0; num_servers], trim }
    }

    /// The current per-round trim count b̂.
    pub fn trim(&self) -> usize {
        self.trim
    }

    /// The current per-server suspicion scores (indexed by server id).
    pub fn scores(&self) -> &[f64] {
        &self.suspicion
    }

    /// Restores evolving state from a checkpoint.
    pub fn restore(&mut self, scores: Vec<f64>, trim: usize) {
        if scores.len() == self.num_servers {
            self.suspicion = scores;
        }
        self.trim = trim.min(self.policy.effective_ceiling(self.num_servers));
    }

    /// Feeds one round of observations — `(server id, its disseminated
    /// global model)` pairs, one per server that was heard from — and
    /// returns the updated estimate. Servers *not* observed this round
    /// (partitioned, crashed) have their suspicion decayed toward zero:
    /// absence is not evidence of lying.
    pub fn observe(&mut self, views: &[(usize, &[f32])]) -> Estimate {
        let distances = median_distances(views);
        let mut observed = vec![false; self.num_servers];
        let outlier_cut = robust_cut(&distances, self.policy.scale());
        let decay = self.policy.decay();
        for (&(id, _), &d) in views.iter().zip(&distances) {
            if id >= self.num_servers {
                continue;
            }
            observed[id] = true;
            let outlier = if d > outlier_cut { 1.0 } else { 0.0 };
            self.suspicion[id] = decay * self.suspicion[id] + (1.0 - decay) * outlier;
        }
        for (id, seen) in observed.iter().enumerate() {
            if !seen {
                self.suspicion[id] *= decay;
            }
        }
        let suspects = self.suspicion.iter().filter(|&&s| s > self.policy.threshold()).count();
        self.trim =
            suspects.max(self.policy.floor).min(self.policy.effective_ceiling(self.num_servers));
        Estimate { trim: self.trim, suspects }
    }
}

/// Mean absolute deviation of each view from the coordinate-wise median
/// of all views. With fewer than 3 views no outlier test is possible and
/// all distances are zero.
fn median_distances(views: &[(usize, &[f32])]) -> Vec<f64> {
    if views.len() < 3 {
        return vec![0.0; views.len()];
    }
    let len = views[0].1.len();
    if len == 0 || views.iter().any(|(_, v)| v.len() != len) {
        return vec![0.0; views.len()];
    }
    let slices: Vec<&[f32]> = views.iter().map(|(_, v)| *v).collect();
    let mut med = vec![0.0f32; len];
    kernel::coordinate_median(&slices, &mut med);
    views
        .iter()
        .map(|(_, v)| {
            let sum: f64 = v
                .iter()
                .zip(&med)
                .map(|(&a, &m)| {
                    let d = f64::from(a) - f64::from(m);
                    if d.is_finite() {
                        d.abs()
                    } else {
                        f64::MAX / len as f64
                    }
                })
                .sum();
            sum / len as f64
        })
        .collect()
}

/// The outlier cut-off: `scale ×` the median of the distances, with a
/// tiny absolute floor so bit-identical honest views (distance exactly 0)
/// never flag each other.
fn robust_cut(distances: &[f64], scale: f64) -> f64 {
    if distances.is_empty() {
        return f64::MAX;
    }
    let mut sorted = distances.to_vec();
    sorted.sort_by(f64::total_cmp);
    let mid = sorted.len() / 2;
    let median =
        if sorted.len() % 2 == 1 { sorted[mid] } else { 0.5 * (sorted[mid - 1] + sorted[mid]) };
    (scale * median).max(1e-12)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn views(models: &[Vec<f32>]) -> Vec<(usize, &[f32])> {
        models.iter().enumerate().map(|(i, m)| (i, m.as_slice())).collect()
    }

    #[test]
    fn default_policy_is_disabled_with_documented_window() {
        let p = EstimatorPolicy::default();
        assert!(!p.enabled);
        assert_eq!(p.decay(), 0.6);
        assert_eq!(p.scale(), 3.0);
        assert_eq!(p.threshold(), 0.5);
        // Explicit values override the auto resolution.
        let tuned = EstimatorPolicy { decay: 0.9, scale: 2.0, threshold: 0.8, ..p };
        assert_eq!(tuned.decay(), 0.9);
        assert_eq!(tuned.scale(), 2.0);
        assert_eq!(tuned.threshold(), 0.8);
        assert!(EstimatorPolicy::enabled().enabled);
        assert!(p.validate().is_ok());
        // serde: missing fields take the documented defaults.
        let from_empty: EstimatorPolicy = serde_json::from_str("{}").unwrap();
        assert_eq!(from_empty, p);
    }

    #[test]
    fn policy_validation() {
        assert!(EstimatorPolicy { decay: 1.0, ..EstimatorPolicy::default() }.validate().is_err());
        assert!(EstimatorPolicy { decay: f64::NAN, ..EstimatorPolicy::default() }
            .validate()
            .is_err());
        assert!(EstimatorPolicy { scale: -1.0, ..EstimatorPolicy::default() }.validate().is_err());
        assert!(EstimatorPolicy { threshold: 1.5, ..EstimatorPolicy::default() }
            .validate()
            .is_err());
        assert!(EstimatorPolicy { floor: 3, ceiling: 2, ..EstimatorPolicy::default() }
            .validate()
            .is_err());
        assert!(EstimatorPolicy { floor: 3, ceiling: 0, ..EstimatorPolicy::default() }
            .validate()
            .is_ok());
    }

    #[test]
    fn auto_ceiling_preserves_quorum() {
        let p = EstimatorPolicy::default();
        // ⌈P/2⌉ − 1: the largest b̂ with 2b̂ + 1 ≤ P ... for odd P; for
        // even P it is the largest b̂ with 2b̂ < P.
        assert_eq!(p.effective_ceiling(10), 4);
        assert_eq!(p.effective_ceiling(9), 4);
        assert_eq!(p.effective_ceiling(4), 1);
        assert_eq!(p.effective_ceiling(2), 0);
        assert_eq!(p.effective_ceiling(1), 0);
        let pinned = EstimatorPolicy { ceiling: 2, ..EstimatorPolicy::default() };
        assert_eq!(pinned.effective_ceiling(10), 2);
    }

    #[test]
    fn honest_consensus_stays_at_floor() {
        let mut est = ByzantineEstimator::new(4, EstimatorPolicy::enabled());
        let models = vec![vec![1.0f32, 2.0]; 4];
        for _ in 0..10 {
            let e = est.observe(&views(&models));
            assert_eq!(e.trim, 0);
            assert_eq!(e.suspects, 0);
        }
        assert!(est.scores().iter().all(|&s| s == 0.0));
    }

    #[test]
    fn sustained_outlier_convicts_within_a_few_rounds() {
        let mut est = ByzantineEstimator::new(5, EstimatorPolicy::enabled());
        let mut models = vec![vec![1.0f32, 1.0]; 5];
        models[2] = vec![100.0, -100.0];
        let mut convicted_at = None;
        for round in 0..10 {
            let e = est.observe(&views(&models));
            if e.trim >= 1 && convicted_at.is_none() {
                convicted_at = Some(round);
            }
        }
        // 1 − 0.6 = 0.4 per round: two outlier rounds cross 0.5.
        assert_eq!(convicted_at, Some(1));
        assert_eq!(est.trim(), 1);
        // Honest servers stay clean.
        for (id, &s) in est.scores().iter().enumerate() {
            if id != 2 {
                assert!(s < 0.5, "server {id} wrongly suspected (s = {s})");
            }
        }
    }

    #[test]
    fn healing_decays_suspicion_back_down() {
        let mut est = ByzantineEstimator::new(5, EstimatorPolicy::enabled());
        let honest = vec![vec![0.0f32; 4]; 5];
        let mut lying = honest.clone();
        lying[1] = vec![50.0; 4];
        for _ in 0..6 {
            est.observe(&views(&lying));
        }
        assert_eq!(est.trim(), 1);
        for _ in 0..6 {
            est.observe(&views(&honest));
        }
        assert_eq!(est.trim(), 0);
    }

    #[test]
    fn unobserved_servers_decay_not_convict() {
        let mut est = ByzantineEstimator::new(5, EstimatorPolicy::enabled());
        // Server 4 never reports (partitioned); the others agree.
        let models = vec![vec![1.0f32, 1.0]; 4];
        let v: Vec<(usize, &[f32])> =
            models.iter().enumerate().map(|(i, m)| (i, m.as_slice())).collect();
        for _ in 0..8 {
            let e = est.observe(&v);
            assert_eq!(e.trim, 0);
        }
        assert_eq!(est.scores()[4], 0.0);
    }

    #[test]
    fn ceiling_caps_mass_compromise() {
        let mut est = ByzantineEstimator::new(5, EstimatorPolicy::enabled());
        // Three of five lie in *different* directions; the median still
        // tracks the honest pair closely enough that distances differ.
        let mut models = vec![vec![0.0f32; 2]; 5];
        models[0] = vec![100.0, 100.0];
        models[1] = vec![-100.0, 100.0];
        models[2] = vec![100.0, -100.0];
        for _ in 0..10 {
            est.observe(&views(&models));
        }
        // Auto ceiling for P = 5 is 2: quorum 2b̂ + 1 = 5 stays reachable.
        assert!(est.trim() <= 2);
    }

    #[test]
    fn floor_forces_minimum_trim() {
        let policy = EstimatorPolicy { floor: 1, ..EstimatorPolicy::enabled() };
        let mut est = ByzantineEstimator::new(5, policy);
        assert_eq!(est.trim(), 1);
        let models = vec![vec![1.0f32]; 5];
        let e = est.observe(&views(&models));
        assert_eq!(e.trim, 1);
        assert_eq!(e.suspects, 0);
    }

    #[test]
    fn too_few_views_is_inconclusive() {
        let mut est = ByzantineEstimator::new(5, EstimatorPolicy::enabled());
        let models = vec![vec![0.0f32], vec![1000.0]];
        let e = est.observe(&views(&models));
        assert_eq!(e.trim, 0);
        assert_eq!(e.suspects, 0);
    }

    #[test]
    fn non_finite_views_are_flagged_not_propagated() {
        let mut est = ByzantineEstimator::new(5, EstimatorPolicy::enabled());
        let mut models = vec![vec![1.0f32, 1.0]; 5];
        models[3] = vec![f32::NAN, f32::INFINITY];
        for _ in 0..4 {
            est.observe(&views(&models));
        }
        assert_eq!(est.trim(), 1);
        assert!(est.scores()[3] > 0.5);
    }

    #[test]
    fn restore_roundtrip() {
        let mut est = ByzantineEstimator::new(4, EstimatorPolicy::enabled());
        let mut models = vec![vec![0.0f32; 3]; 4];
        models[1] = vec![99.0; 3];
        for _ in 0..5 {
            est.observe(&views(&models));
        }
        let scores = est.scores().to_vec();
        let trim = est.trim();
        let mut fresh = ByzantineEstimator::new(4, EstimatorPolicy::enabled());
        fresh.restore(scores, trim);
        assert_eq!(fresh, est);
        // A stale snapshot with the wrong server count is ignored rather
        // than corrupting state.
        let mut fresh = ByzantineEstimator::new(4, EstimatorPolicy::enabled());
        fresh.restore(vec![1.0; 7], 9);
        assert_eq!(fresh.scores(), &[0.0; 4]);
        assert_eq!(fresh.trim(), 1); // clamped to the P = 4 auto ceiling
    }

    #[test]
    fn observe_is_deterministic() {
        let run = || {
            let mut est = ByzantineEstimator::new(6, EstimatorPolicy::enabled());
            let mut models = vec![vec![0.5f32; 8]; 6];
            models[0] = vec![-40.0; 8];
            let mut trail = Vec::new();
            for _ in 0..12 {
                let e = est.observe(&views(&models));
                trail.push((e.trim, e.suspects));
            }
            (trail, est.scores().to_vec())
        };
        assert_eq!(run(), run());
    }
}
