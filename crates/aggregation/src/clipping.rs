//! Centered clipping (Karimireddy, He & Jaggi, ICML 2021) — a momentum-
//! style robust aggregator contemporary with the paper.

use fedms_tensor::Tensor;

use crate::rule::validate_models;
use crate::{AggError, AggregationRule, Result};

/// Iterative centered clipping: starting from an estimate `v` (the
/// coordinate-wise median here), repeat
/// `v ← v + (1/n) Σ_i clip_τ(x_i − v)` where `clip_τ` scales a vector down
/// to L2 norm `τ` if it exceeds it.
///
/// Bounded-influence by construction: a single Byzantine input can move the
/// estimate by at most `τ/n` per iteration, whatever its magnitude.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CenteredClip {
    tau: f32,
    iters: usize,
}

impl CenteredClip {
    /// Creates the rule with clipping radius `tau` and `iters` refinement
    /// iterations.
    ///
    /// # Errors
    ///
    /// Returns [`AggError::BadParameter`] for non-positive `tau` or zero
    /// iterations.
    pub fn new(tau: f32, iters: usize) -> Result<Self> {
        if !(tau.is_finite() && tau > 0.0) {
            return Err(AggError::BadParameter(format!("tau must be positive, got {tau}")));
        }
        if iters == 0 {
            return Err(AggError::BadParameter("need at least one iteration".into()));
        }
        Ok(CenteredClip { tau, iters })
    }

    /// The clipping radius τ.
    pub fn tau(&self) -> f32 {
        self.tau
    }
}

impl AggregationRule for CenteredClip {
    fn name(&self) -> &'static str {
        "centered_clip"
    }

    fn aggregate(&self, models: &[Tensor]) -> Result<Tensor> {
        validate_models(models)?;
        // Robust initialisation: the coordinate-wise median.
        let mut v = crate::CoordinateMedian::new().aggregate(models)?;
        let n = models.len() as f32;
        for _ in 0..self.iters {
            let mut correction = Tensor::zeros(v.dims());
            for m in models {
                let mut delta = m.sub(&v)?;
                let norm = delta.norm_l2();
                if norm > self.tau {
                    delta.scale(self.tau / norm);
                }
                correction.add_inplace(&delta)?;
            }
            correction.scale(1.0 / n);
            v.add_inplace(&correction)?;
        }
        Ok(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scalars(vs: &[f32]) -> Vec<Tensor> {
        vs.iter().map(|&v| Tensor::from_slice(&[v])).collect()
    }

    #[test]
    fn validates_parameters() {
        assert!(CenteredClip::new(0.0, 3).is_err());
        assert!(CenteredClip::new(-1.0, 3).is_err());
        assert!(CenteredClip::new(f32::NAN, 3).is_err());
        assert!(CenteredClip::new(1.0, 0).is_err());
        assert_eq!(CenteredClip::new(2.0, 3).unwrap().tau(), 2.0);
    }

    #[test]
    fn identical_models_are_fixed_point() {
        let models = scalars(&[4.0; 6]);
        let out = CenteredClip::new(1.0, 5).unwrap().aggregate(&models).unwrap();
        assert!((out.as_slice()[0] - 4.0).abs() < 1e-6);
    }

    #[test]
    fn clean_inputs_converge_to_mean() {
        let models = scalars(&[1.0, 2.0, 3.0]);
        // τ large enough to never clip → plain mean after one iteration.
        let out = CenteredClip::new(100.0, 3).unwrap().aggregate(&models).unwrap();
        assert!((out.as_slice()[0] - 2.0).abs() < 1e-4);
    }

    #[test]
    fn byzantine_influence_is_bounded_by_tau() {
        let mut vs = vec![0.0f32; 9];
        vs.push(1e9);
        let out = CenteredClip::new(1.0, 3).unwrap().aggregate(&scalars(&vs)).unwrap();
        // The outlier moves the estimate by at most iters·τ/n = 0.3.
        assert!(out.as_slice()[0].abs() <= 0.3 + 1e-4, "got {}", out.as_slice()[0]);
    }

    #[test]
    fn clips_in_l2_not_per_coordinate() {
        // A 2-d outlier along one axis: clipping is on the vector norm.
        let mut models = vec![Tensor::from_slice(&[0.0, 0.0]); 4];
        models.push(Tensor::from_slice(&[10.0, 0.0]));
        let out = CenteredClip::new(1.0, 1).unwrap().aggregate(&models).unwrap();
        assert!(out.as_slice()[0] <= 0.2 + 1e-5);
        assert_eq!(out.as_slice()[1], 0.0);
    }

    #[test]
    fn rejects_bad_input() {
        assert!(CenteredClip::new(1.0, 1).unwrap().aggregate(&[]).is_err());
    }
}
