//! The [`AggregationRule`] trait and shared input validation.

use fedms_tensor::Tensor;

use crate::{AggError, MeanAccumulator, Result};

/// A rule that combines several same-shape model tensors into one.
///
/// Implementations must be deterministic functions of their input (the
/// simulator relies on this for reproducibility) and must tolerate any
/// *values* — Byzantine inputs may contain arbitrary finite floats.
///
/// The trait is object-safe; experiment harnesses select rules at runtime
/// via `Box<dyn AggregationRule>`.
pub trait AggregationRule: Send + Sync {
    /// A short identifier used in experiment output (e.g. `"trimmed_mean"`).
    fn name(&self) -> &'static str;

    /// Aggregates `models` into a single tensor of the same shape.
    ///
    /// # Errors
    ///
    /// Returns [`AggError::Empty`] for an empty slice,
    /// [`AggError::ShapeDisagreement`] if shapes differ, and rule-specific
    /// errors (e.g. [`AggError::TooFewModels`]) otherwise.
    fn aggregate(&self, models: &[Tensor]) -> Result<Tensor>;

    /// A streaming accumulator equivalent to this rule, if one exists.
    ///
    /// Rules that can fold models in one at a time (today only [`Mean`],
    /// the per-server aggregation of Algorithm 1 line 4) return
    /// `Some(accumulator)`; pushing the same models in the same order and
    /// finishing must be bit-identical to [`AggregationRule::aggregate`]
    /// over the batched slice. Robust rules that need the full model set at
    /// once keep the default `None`, and callers fall back to batching.
    ///
    /// [`Mean`]: crate::Mean
    fn make_accumulator(&self) -> Option<MeanAccumulator> {
        None
    }
}

/// Validates the common preconditions shared by all rules: at least one
/// model, all with identical shapes. Returns the common length.
///
/// # Errors
///
/// Returns [`AggError::Empty`] or [`AggError::ShapeDisagreement`].
pub(crate) fn validate_models(models: &[Tensor]) -> Result<usize> {
    let Some(first) = models.first() else {
        return Err(AggError::Empty);
    };
    for (i, m) in models.iter().enumerate().skip(1) {
        if m.shape() != first.shape() {
            return Err(AggError::ShapeDisagreement { index: i });
        }
    }
    Ok(first.len())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validate_rejects_empty_and_mismatched() {
        assert!(matches!(validate_models(&[]), Err(AggError::Empty)));
        let a = Tensor::zeros(&[2]);
        let b = Tensor::zeros(&[3]);
        assert!(matches!(
            validate_models(&[a.clone(), b]),
            Err(AggError::ShapeDisagreement { index: 1 })
        ));
        assert_eq!(validate_models(&[a.clone(), a]).unwrap(), 2);
    }
}
