//! Bulyan (Guerraoui & Rouault, ICML 2018 — reference [10] of the paper).

use fedms_tensor::Tensor;

use crate::rule::validate_models;
use crate::{kernel, AggError, AggregationRule, Result};

/// Bulyan: a two-stage rule that first selects `n − 2f` candidates by
/// iterated Krum, then coordinate-wise averages the `n − 4f` values closest
/// to the candidates' median.
///
/// Requires `n ≥ 4f + 3` inputs, the strongest requirement of the rules in
/// this crate — the price for combining distance-based selection with
/// coordinate-wise robustness.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Bulyan {
    num_byzantine: usize,
}

impl Bulyan {
    /// Creates the rule assuming at most `num_byzantine` malicious inputs.
    pub fn new(num_byzantine: usize) -> Self {
        Bulyan { num_byzantine }
    }

    /// The assumed Byzantine count `f`.
    pub fn num_byzantine(&self) -> usize {
        self.num_byzantine
    }
}

impl AggregationRule for Bulyan {
    fn name(&self) -> &'static str {
        "bulyan"
    }

    fn aggregate(&self, models: &[Tensor]) -> Result<Tensor> {
        let len = validate_models(models)?;
        let n = models.len();
        let f = self.num_byzantine;
        if n < 4 * f + 3 {
            return Err(AggError::TooFewModels { got: n, needed: 4 * f + 3 });
        }
        // Stage 1: select n − 2f candidates by Krum score (the same
        // scoring Multi-Krum uses, but keeping the chosen set instead of
        // averaging it away).
        let select = n - 2 * f;
        let krum_scores = crate::krum::krum_scores(models, f)?;
        let mut order: Vec<usize> = (0..n).collect();
        order.sort_by(|&a, &b| krum_scores[a].total_cmp(&krum_scores[b]));
        let chosen: Vec<&[f32]> = order[..select].iter().map(|&i| models[i].as_slice()).collect();

        // Stage 2: per coordinate, average the select − 2f values closest
        // to the median of the chosen candidates. Columns arrive already
        // sorted (total order) through the shared blocked column path.
        let keep = select - 2 * f;
        let mut out = vec![0.0f32; len];
        kernel::for_sorted_columns(&chosen, len, |d, column| {
            let median = if select % 2 == 1 {
                column[select / 2]
            } else {
                0.5 * (column[select / 2 - 1] + column[select / 2])
            };
            // The `keep` values closest to the median form a contiguous
            // window of the sorted column; slide to find the best window.
            let mut best_start = 0usize;
            let mut best_spread = f32::INFINITY;
            for start in 0..=(select - keep) {
                let spread =
                    (column[start + keep - 1] - median).abs().max((column[start] - median).abs());
                if spread < best_spread {
                    best_spread = spread;
                    best_start = start;
                }
            }
            let window = &column[best_start..best_start + keep];
            out[d] = (window.iter().map(|&v| f64::from(v)).sum::<f64>() / keep as f64) as f32;
        });
        Ok(Tensor::from_vec(out, models[0].dims())?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scalars(vs: &[f32]) -> Vec<Tensor> {
        vs.iter().map(|&v| Tensor::from_slice(&[v])).collect()
    }

    #[test]
    fn requires_4f_plus_3() {
        let models = scalars(&[1.0; 6]);
        assert!(matches!(
            Bulyan::new(1).aggregate(&models),
            Err(AggError::TooFewModels { needed: 7, .. })
        ));
        assert!(Bulyan::new(1).aggregate(&scalars(&[1.0; 7])).is_ok());
        assert_eq!(Bulyan::new(2).num_byzantine(), 2);
    }

    #[test]
    fn identical_models_are_fixed_point() {
        let models = scalars(&[3.5; 8]);
        let out = Bulyan::new(1).aggregate(&models).unwrap();
        assert_eq!(out.as_slice(), &[3.5]);
    }

    #[test]
    fn robust_to_f_extreme_outliers() {
        let mut vs = vec![1.0f32, 1.1, 0.9, 1.05, 0.95, 1.0];
        vs.push(1e9); // f = 1 Byzantine
        let out = Bulyan::new(1).aggregate(&scalars(&vs)).unwrap();
        assert!((out.as_slice()[0] - 1.0).abs() < 0.2, "got {}", out.as_slice()[0]);
    }

    #[test]
    fn output_within_honest_range() {
        let honest = [0.5f32, 1.0, 1.5, 2.0, 2.5, 3.0];
        let mut vs = honest.to_vec();
        vs.push(-1e9);
        let out = Bulyan::new(1).aggregate(&scalars(&vs)).unwrap().as_slice()[0];
        assert!((0.5..=3.0).contains(&out), "got {out}");
    }

    #[test]
    fn multi_dimensional_trims_per_coordinate() {
        let mut models: Vec<Tensor> =
            (0..7).map(|i| Tensor::from_slice(&[i as f32 * 0.1, 1.0])).collect();
        models[6] = Tensor::from_slice(&[0.3, 1e9]); // outlier in dim 1 only
        let out = Bulyan::new(1).aggregate(&models).unwrap();
        assert!(out.as_slice()[1] < 2.0, "dim-1 outlier must be trimmed");
        assert!((out.as_slice()[0] - 0.3).abs() < 0.3);
    }

    #[test]
    fn rejects_bad_input() {
        assert!(Bulyan::new(0).aggregate(&[]).is_err());
    }

    #[test]
    fn nan_model_is_deselected_deterministically() {
        // A NaN-poisoned model has NaN distances, hence a NaN Krum score;
        // under total_cmp NaN scores sort *last* and stage 1 drops them
        // (the old partial_cmp comparator left their position to chance).
        let mut models: Vec<Tensor> =
            (0..6).map(|i| Tensor::from_slice(&[1.0 + i as f32 * 0.01])).collect();
        models.push(Tensor::from_slice(&[f32::NAN]));
        let out = Bulyan::new(1).aggregate(&models).unwrap().as_slice()[0];
        assert!(out.is_finite(), "NaN model must be deselected, got {out}");
        assert!((out - 1.0).abs() < 0.1, "got {out}");
    }
}
