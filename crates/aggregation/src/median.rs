//! Coordinate-wise median aggregation (Yin et al., 2018).

use fedms_tensor::Tensor;

use crate::rule::validate_models;
use crate::{kernel, AggregationRule, Result};

/// The coordinate-wise median: in every dimension, the median of the
/// received values (mean of the two central values for even counts).
///
/// The strongest trimming limit of the trimmed-mean family; used as a
/// baseline filter in the ablation benches.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CoordinateMedian;

impl CoordinateMedian {
    /// Creates the rule.
    pub fn new() -> Self {
        CoordinateMedian
    }
}

impl AggregationRule for CoordinateMedian {
    fn name(&self) -> &'static str {
        "coordinate_median"
    }

    fn aggregate(&self, models: &[Tensor]) -> Result<Tensor> {
        let len = validate_models(models)?;
        let views: Vec<&[f32]> = models.iter().map(Tensor::as_slice).collect();
        let mut out = vec![0.0f32; len];
        kernel::coordinate_median(&views, &mut out);
        Ok(Tensor::from_vec(out, models[0].dims())?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scalars(vs: &[f32]) -> Vec<Tensor> {
        vs.iter().map(|&v| Tensor::from_slice(&[v])).collect()
    }

    #[test]
    fn odd_count_takes_middle() {
        let out = CoordinateMedian::new().aggregate(&scalars(&[5.0, 1.0, 3.0])).unwrap();
        assert_eq!(out.as_slice(), &[3.0]);
    }

    #[test]
    fn even_count_averages_center() {
        let out = CoordinateMedian::new().aggregate(&scalars(&[1.0, 2.0, 3.0, 10.0])).unwrap();
        assert_eq!(out.as_slice(), &[2.5]);
    }

    #[test]
    fn robust_to_minority_outliers() {
        let out = CoordinateMedian::new().aggregate(&scalars(&[1.0, 1.0, 1.0, 1e9, -1e9])).unwrap();
        assert_eq!(out.as_slice(), &[1.0]);
    }

    #[test]
    fn per_dimension() {
        let models = vec![
            Tensor::from_slice(&[0.0, 9.0]),
            Tensor::from_slice(&[1.0, 8.0]),
            Tensor::from_slice(&[2.0, 7.0]),
        ];
        let out = CoordinateMedian::new().aggregate(&models).unwrap();
        assert_eq!(out.as_slice(), &[1.0, 8.0]);
    }

    #[test]
    fn rejects_bad_input() {
        assert!(CoordinateMedian::new().aggregate(&[]).is_err());
    }

    #[test]
    fn nan_and_infinity_positions_are_pinned() {
        // total_cmp: NaN is the largest value, so an odd sample's median
        // stays finite with a single NaN outlier.
        let out = CoordinateMedian::new().aggregate(&scalars(&[1.0, f32::NAN, 3.0])).unwrap();
        assert_eq!(out.as_slice(), &[3.0]);
        // ±inf sit outside all finite values; median of five is finite.
        let vs = [f32::NEG_INFINITY, 1.0, 2.0, 3.0, f32::INFINITY];
        let out = CoordinateMedian::new().aggregate(&scalars(&vs)).unwrap();
        assert_eq!(out.as_slice(), &[2.0]);
        // Even count with an untrimmable NaN in the center propagates
        // deterministically: sorted [1, 2, NaN, NaN] → 0.5·(2 + NaN).
        let out =
            CoordinateMedian::new().aggregate(&scalars(&[f32::NAN, 1.0, 2.0, f32::NAN])).unwrap();
        assert!(out.as_slice()[0].is_nan());
        // Duplicates: the median of an all-equal sample is that value.
        let out = CoordinateMedian::new().aggregate(&scalars(&[4.5; 6])).unwrap();
        assert_eq!(out.as_slice(), &[4.5]);
    }
}
