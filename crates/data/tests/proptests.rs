//! Property-based tests of dataset and partitioning invariants.

use fedms_data::{BatchSampler, Dataset, DirichletPartitioner, LabelHistogram, SynthVisionConfig};
use fedms_tensor::Tensor;
use proptest::prelude::*;
use std::collections::HashSet;

fn dataset_strategy() -> impl Strategy<Value = Dataset> {
    (2usize..40, 2usize..6).prop_flat_map(|(n, classes)| {
        proptest::collection::vec(0usize..classes, n).prop_map(move |labels| {
            Dataset::new(Tensor::zeros(&[labels.len(), 3]), labels, classes).expect("valid dataset")
        })
    })
}

proptest! {
    /// Partition is an exact cover: every index once, none invented.
    #[test]
    fn partition_is_exact_cover(
        ds in dataset_strategy(),
        clients in 1usize..8,
        alpha in 0.1f64..100.0,
        seed in 0u64..100,
    ) {
        prop_assume!(clients <= ds.len());
        let shards =
            DirichletPartitioner::new(alpha).unwrap().partition(&ds, clients, seed).unwrap();
        prop_assert_eq!(shards.len(), clients);
        let mut seen = HashSet::new();
        for shard in &shards {
            prop_assert!(!shard.is_empty(), "no shard may be empty");
            for &i in shard {
                prop_assert!(i < ds.len());
                prop_assert!(seen.insert(i), "index {i} assigned twice");
            }
        }
        prop_assert_eq!(seen.len(), ds.len());
    }

    /// Histograms of a partition add back up to the global class counts.
    #[test]
    fn histograms_sum_to_global(
        ds in dataset_strategy(),
        clients in 1usize..6,
        seed in 0u64..50,
    ) {
        prop_assume!(clients <= ds.len());
        let shards =
            DirichletPartitioner::new(1.0).unwrap().partition(&ds, clients, seed).unwrap();
        let mut total = vec![0usize; ds.num_classes()];
        for shard in &shards {
            let h = LabelHistogram::from_indices(&ds, shard).unwrap();
            for (t, &c) in total.iter_mut().zip(h.counts()) {
                *t += c;
            }
        }
        prop_assert_eq!(total, ds.class_counts());
    }

    /// Batch sampling never repeats inside a batch and stays in range.
    #[test]
    fn sampler_invariants(len in 1usize..200, batch in 1usize..64, seed in 0u64..50) {
        let mut s = BatchSampler::new(len, batch, seed).unwrap();
        for _ in 0..5 {
            let b = s.next_batch();
            prop_assert_eq!(b.len(), batch.min(len));
            let set: HashSet<_> = b.iter().collect();
            prop_assert_eq!(set.len(), b.len());
            prop_assert!(b.iter().all(|&i| i < len));
        }
    }

    /// Subsetting preserves per-sample data exactly.
    #[test]
    fn subset_preserves_rows(indices in proptest::collection::vec(0usize..20, 1..10)) {
        let data: Vec<f32> = (0..60).map(|v| v as f32).collect();
        let ds = Dataset::new(
            Tensor::from_vec(data, &[20, 3]).unwrap(),
            (0..20).map(|i| i % 4).collect(),
            4,
        )
        .unwrap();
        let sub = ds.subset(&indices).unwrap();
        for (pos, &orig) in indices.iter().enumerate() {
            let got = &sub.samples().as_slice()[pos * 3..(pos + 1) * 3];
            let want = &ds.samples().as_slice()[orig * 3..(orig + 1) * 3];
            prop_assert_eq!(got, want);
            prop_assert_eq!(sub.labels()[pos], ds.labels()[orig]);
        }
    }

    /// Label rotation is a bijection on classes: rotating by `classes`
    /// steps in total returns the original labels.
    #[test]
    fn label_rotation_cycles(ds in dataset_strategy(), offset in 0usize..10) {
        let rotated = ds.with_rotated_labels(offset);
        prop_assert_eq!(
            rotated.class_counts().iter().sum::<usize>(),
            ds.class_counts().iter().sum::<usize>()
        );
        let back = rotated.with_rotated_labels(ds.num_classes() - offset % ds.num_classes());
        prop_assert_eq!(back.labels(), ds.labels());
    }

    /// Dataset generation is a pure function of (config, seed).
    #[test]
    fn synthvision_pure(seed in 0u64..20) {
        let cfg = SynthVisionConfig::small();
        let (a, _) = cfg.generate(seed).unwrap();
        let (b, _) = cfg.generate(seed).unwrap();
        prop_assert_eq!(a, b);
    }
}
