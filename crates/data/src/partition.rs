//! Dirichlet non-iid partitioning (Hsu, Qi & Brown, 2019 — the paper's
//! `D_α`).

use fedms_tensor::rng::rng_for;
use rand::Rng;
use rand_distr::{Dirichlet, Distribution};
use serde::{Deserialize, Serialize};

use crate::{DataError, Dataset, Result};

/// Splits a dataset across `K` clients with per-class Dirichlet proportions.
///
/// For every class `c`, client shares `p ∈ Δ^K` are drawn from
/// `Dirichlet(α·1_K)` and the class's samples are dealt out accordingly.
/// Small `α` concentrates each class on few clients (strongly non-iid);
/// `α → ∞` approaches a uniform iid split. The paper sweeps
/// `D_α ∈ {1, 5, 10, 1000}`.
///
/// Every client is guaranteed at least one sample (a client that would end
/// up empty steals one sample from the largest shard), so downstream local
/// training is always well-defined.
///
/// # Example
///
/// ```
/// use fedms_data::{DirichletPartitioner, SynthVisionConfig};
///
/// let (train, _) = SynthVisionConfig::small().generate(0)?;
/// let shards = DirichletPartitioner::new(1.0)?.partition(&train, 4, 0)?;
/// assert!(shards.iter().all(|s| !s.is_empty()));
/// # Ok::<(), fedms_data::DataError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DirichletPartitioner {
    alpha: f64,
}

impl DirichletPartitioner {
    /// Creates a partitioner with concentration `alpha` (the paper's `D_α`).
    ///
    /// # Errors
    ///
    /// Returns [`DataError::BadConfig`] for non-positive or non-finite `alpha`.
    pub fn new(alpha: f64) -> Result<Self> {
        if !(alpha.is_finite() && alpha > 0.0) {
            return Err(DataError::BadConfig(format!("alpha must be positive, got {alpha}")));
        }
        Ok(DirichletPartitioner { alpha })
    }

    /// The concentration parameter.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// Partitions `dataset` into `num_clients` index shards, seeded by
    /// `seed`. Shard `k` holds the sample indices of client `k`.
    ///
    /// # Errors
    ///
    /// Returns [`DataError::BadConfig`] if `num_clients` is zero or exceeds
    /// the dataset size.
    pub fn partition(
        &self,
        dataset: &Dataset,
        num_clients: usize,
        seed: u64,
    ) -> Result<Vec<Vec<usize>>> {
        if num_clients == 0 {
            return Err(DataError::BadConfig("need at least one client".into()));
        }
        if num_clients > dataset.len() {
            return Err(DataError::BadConfig(format!(
                "{num_clients} clients cannot each receive a sample from {} total",
                dataset.len()
            )));
        }
        let mut shards: Vec<Vec<usize>> = vec![Vec::new(); num_clients];
        // Indices of each class, in dataset order.
        let mut per_class: Vec<Vec<usize>> = vec![Vec::new(); dataset.num_classes()];
        for (i, &l) in dataset.labels().iter().enumerate() {
            per_class[l].push(i);
        }
        for (class, indices) in per_class.into_iter().enumerate() {
            if indices.is_empty() {
                continue;
            }
            let mut rng = rng_for(seed, &[0x44_49_52, class as u64]); // "DIR"
            let shares = self.sample_shares(num_clients, &mut rng);
            // Deal samples to clients proportionally via largest-remainder.
            let n = indices.len();
            let mut counts: Vec<usize> =
                shares.iter().map(|&s| (s * n as f64).floor() as usize).collect();
            let assigned: usize = counts.iter().sum();
            // Distribute the remainder to the largest fractional parts.
            let mut fracs: Vec<(f64, usize)> = shares
                .iter()
                .enumerate()
                .map(|(k, &s)| (s * n as f64 - counts[k] as f64, k))
                .collect();
            fracs.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap_or(std::cmp::Ordering::Equal));
            for i in 0..n - assigned {
                counts[fracs[i % num_clients].1] += 1;
            }
            let mut cursor = 0usize;
            for (k, &c) in counts.iter().enumerate() {
                shards[k].extend_from_slice(&indices[cursor..cursor + c]);
                cursor += c;
            }
        }
        // Guarantee non-empty shards.
        for k in 0..num_clients {
            if shards[k].is_empty() {
                let donor = (0..num_clients)
                    .max_by_key(|&j| shards[j].len())
                    .expect("at least one client exists");
                let moved = shards[donor].pop().expect("largest shard holds at least one sample");
                shards[k].push(moved);
            }
        }
        Ok(shards)
    }

    /// Draws one set of client shares. `Dirichlet` in `rand_distr` requires
    /// `K ≥ 2`; a single client always receives share 1.
    fn sample_shares<R: Rng + ?Sized>(&self, num_clients: usize, rng: &mut R) -> Vec<f64> {
        if num_clients == 1 {
            return vec![1.0];
        }
        let dir = Dirichlet::new_with_size(self.alpha, num_clients)
            .expect("alpha validated positive, num_clients >= 2");
        dir.sample(rng)
    }
}

/// A dispersion statistic for partition quality: the mean across clients of
/// the total-variation distance between the client's label distribution and
/// the global label distribution. 0 = perfectly iid; approaching 1 = each
/// client sees a single class. Used by the `fig4` experiment to quantify
/// the heterogeneity each `D_α` induces.
pub fn mean_tv_distance(dataset: &Dataset, shards: &[Vec<usize>]) -> f64 {
    let classes = dataset.num_classes();
    let global = dataset.class_counts();
    let total: usize = global.iter().sum();
    let global: Vec<f64> = global.iter().map(|&c| c as f64 / total as f64).collect();
    let mut acc = 0.0f64;
    for shard in shards {
        let mut counts = vec![0usize; classes];
        for &i in shard {
            counts[dataset.labels()[i]] += 1;
        }
        let n: usize = counts.iter().sum();
        if n == 0 {
            continue;
        }
        let tv: f64 = counts
            .iter()
            .zip(global.iter())
            .map(|(&c, &g)| (c as f64 / n as f64 - g).abs())
            .sum::<f64>()
            / 2.0;
        acc += tv;
    }
    acc / shards.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SynthVisionConfig;

    fn data() -> Dataset {
        let (train, _) = SynthVisionConfig::default().generate(11).unwrap();
        train
    }

    #[test]
    fn validates_alpha() {
        assert!(DirichletPartitioner::new(0.0).is_err());
        assert!(DirichletPartitioner::new(-1.0).is_err());
        assert!(DirichletPartitioner::new(f64::NAN).is_err());
        assert_eq!(DirichletPartitioner::new(2.0).unwrap().alpha(), 2.0);
    }

    #[test]
    fn partition_covers_every_sample_exactly_once() {
        let d = data();
        let shards = DirichletPartitioner::new(1.0).unwrap().partition(&d, 7, 3).unwrap();
        let mut seen = vec![false; d.len()];
        for shard in &shards {
            for &i in shard {
                assert!(!seen[i], "sample {i} assigned twice");
                seen[i] = true;
            }
        }
        assert!(seen.iter().all(|&s| s), "every sample must be assigned");
    }

    #[test]
    fn partition_is_deterministic() {
        let d = data();
        let p = DirichletPartitioner::new(5.0).unwrap();
        assert_eq!(p.partition(&d, 10, 9).unwrap(), p.partition(&d, 10, 9).unwrap());
        assert_ne!(p.partition(&d, 10, 9).unwrap(), p.partition(&d, 10, 10).unwrap());
    }

    #[test]
    fn no_empty_shards() {
        let d = data();
        // Extremely non-iid: empty shards would be likely without the guard.
        let shards = DirichletPartitioner::new(0.05).unwrap().partition(&d, 50, 1).unwrap();
        assert!(shards.iter().all(|s| !s.is_empty()));
    }

    #[test]
    fn small_alpha_is_more_heterogeneous() {
        let d = data();
        let het = mean_tv_distance(
            &d,
            &DirichletPartitioner::new(0.1).unwrap().partition(&d, 10, 5).unwrap(),
        );
        let hom = mean_tv_distance(
            &d,
            &DirichletPartitioner::new(1000.0).unwrap().partition(&d, 10, 5).unwrap(),
        );
        assert!(het > hom + 0.1, "alpha 0.1 should be much more heterogeneous: {het} vs {hom}");
        assert!(hom < 0.15, "alpha 1000 should be near-iid, tv {hom}");
    }

    #[test]
    fn validates_client_count() {
        let d = data();
        let p = DirichletPartitioner::new(1.0).unwrap();
        assert!(p.partition(&d, 0, 0).is_err());
        assert!(p.partition(&d, d.len() + 1, 0).is_err());
        assert!(p.partition(&d, 1, 0).is_ok(), "single client receives everything");
    }

    #[test]
    fn single_client_gets_all() {
        let d = data();
        let shards = DirichletPartitioner::new(1.0).unwrap().partition(&d, 1, 0).unwrap();
        assert_eq!(shards[0].len(), d.len());
    }
}
