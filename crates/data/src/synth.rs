//! `SynthVision`: the synthetic 10-class image dataset standing in for
//! CIFAR-10.
//!
//! Each class is defined by a smooth random prototype image (low-frequency
//! random field); samples are the prototype plus per-pixel Gaussian noise
//! and a random global brightness shift. The class-overlap (and therefore
//! the achievable accuracy ceiling) is controlled by `noise_std`: the
//! default configuration is calibrated so that a small model converges to
//! roughly the paper's 75% accuracy plateau rather than saturating at 100%.

use fedms_tensor::rng::rng_for;
use fedms_tensor::Tensor;
use rand::Rng;
use rand_distr::{Distribution, Normal};
use serde::{Deserialize, Serialize};

use crate::{DataError, Dataset, Result};

/// Configuration for [`SynthVision`] generation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SynthVisionConfig {
    /// Number of classes (the paper uses 10).
    pub num_classes: usize,
    /// Image channels.
    pub channels: usize,
    /// Image height.
    pub height: usize,
    /// Image width.
    pub width: usize,
    /// Training samples per class.
    pub train_per_class: usize,
    /// Test samples per class.
    pub test_per_class: usize,
    /// Per-pixel sample noise (class overlap / task difficulty).
    pub noise_std: f32,
    /// Scale of the class prototypes.
    pub prototype_scale: f32,
    /// Standard deviation of the per-sample global brightness shift.
    pub brightness_std: f32,
}

impl Default for SynthVisionConfig {
    /// The harness configuration: 10 classes of 3×8×8 images, 100 train and
    /// 20 test samples per class, calibrated so training plateaus near the paper's ~75%.
    fn default() -> Self {
        SynthVisionConfig {
            num_classes: 10,
            channels: 3,
            height: 8,
            width: 8,
            train_per_class: 100,
            test_per_class: 20,
            noise_std: 3.5,
            prototype_scale: 1.0,
            brightness_std: 0.3,
        }
    }
}

impl SynthVisionConfig {
    /// A miniature configuration for tests and doc examples.
    pub fn small() -> Self {
        SynthVisionConfig {
            num_classes: 4,
            channels: 1,
            height: 4,
            width: 4,
            train_per_class: 10,
            test_per_class: 4,
            noise_std: 0.5,
            prototype_scale: 1.0,
            brightness_std: 0.1,
        }
    }

    /// Scalars per image.
    pub fn sample_volume(&self) -> usize {
        self.channels * self.height * self.width
    }

    /// Generates the train and test splits deterministically from `seed`.
    ///
    /// # Errors
    ///
    /// Returns [`DataError::BadConfig`] for zero-sized dimensions or counts,
    /// or non-finite noise parameters.
    pub fn generate(&self, seed: u64) -> Result<(Dataset, Dataset)> {
        let gen = SynthVision::new(self.clone(), seed)?;
        Ok((gen.train(), gen.test()))
    }
}

/// The generated dataset pair plus the prototypes that define it.
#[derive(Debug, Clone)]
pub struct SynthVision {
    config: SynthVisionConfig,
    prototypes: Vec<Tensor>,
    train: Dataset,
    test: Dataset,
}

/// Smooths a flat `(C,H,W)` image in place with a 3×3 box blur per channel,
/// turning white noise into a low-frequency class pattern.
fn box_blur(data: &mut [f32], c: usize, h: usize, w: usize) {
    let mut out = vec![0.0f32; data.len()];
    for ch in 0..c {
        let plane = &data[ch * h * w..(ch + 1) * h * w];
        let dst = &mut out[ch * h * w..(ch + 1) * h * w];
        for y in 0..h {
            for x in 0..w {
                let mut acc = 0.0f32;
                let mut n = 0.0f32;
                for dy in -1i64..=1 {
                    for dx in -1i64..=1 {
                        let yy = y as i64 + dy;
                        let xx = x as i64 + dx;
                        if yy >= 0 && yy < h as i64 && xx >= 0 && xx < w as i64 {
                            acc += plane[yy as usize * w + xx as usize];
                            n += 1.0;
                        }
                    }
                }
                dst[y * w + x] = acc / n;
            }
        }
    }
    data.copy_from_slice(&out);
}

impl SynthVision {
    /// Generates prototypes and both splits deterministically from `seed`.
    ///
    /// # Errors
    ///
    /// Returns [`DataError::BadConfig`] for invalid configurations.
    pub fn new(config: SynthVisionConfig, seed: u64) -> Result<Self> {
        if config.num_classes == 0
            || config.channels == 0
            || config.height == 0
            || config.width == 0
        {
            return Err(DataError::BadConfig("dataset dimensions must be positive".into()));
        }
        if config.train_per_class == 0 || config.test_per_class == 0 {
            return Err(DataError::BadConfig("per-class sample counts must be positive".into()));
        }
        if !(config.noise_std.is_finite()
            && config.noise_std >= 0.0
            && config.prototype_scale.is_finite()
            && config.brightness_std.is_finite()
            && config.brightness_std >= 0.0)
        {
            return Err(DataError::BadConfig("noise parameters must be finite".into()));
        }

        let vol = config.sample_volume();
        let mut prototypes = Vec::with_capacity(config.num_classes);
        for class in 0..config.num_classes {
            let mut rng = rng_for(seed, &[0x50_52_4F_54, class as u64]); // "PROT"
            let mut proto = Tensor::randn(&mut rng, &[vol], 0.0, 1.0).into_vec();
            box_blur(&mut proto, config.channels, config.height, config.width);
            // Blurring shrinks the variance; renormalise to prototype_scale.
            let norm = (proto.iter().map(|v| v * v).sum::<f32>() / vol as f32).sqrt();
            let scale = if norm > 0.0 { config.prototype_scale / norm } else { 0.0 };
            for v in &mut proto {
                *v *= scale;
            }
            prototypes.push(Tensor::from_vec(proto, &[vol])?);
        }

        let train = Self::sample_split(&config, &prototypes, seed, 0, config.train_per_class)?;
        let test = Self::sample_split(&config, &prototypes, seed, 1, config.test_per_class)?;
        Ok(SynthVision { config, prototypes, train, test })
    }

    fn sample_split(
        config: &SynthVisionConfig,
        prototypes: &[Tensor],
        seed: u64,
        split: u64,
        per_class: usize,
    ) -> Result<Dataset> {
        let vol = config.sample_volume();
        let n = per_class * config.num_classes;
        let mut data = Vec::with_capacity(n * vol);
        let mut labels = Vec::with_capacity(n);
        for (class, prototype) in prototypes.iter().enumerate().take(config.num_classes) {
            let mut rng = rng_for(seed, &[0x53_41_4D_50, split, class as u64]); // "SAMP"
            let noise = Normal::new(0.0f32, config.noise_std.max(1e-12))
                .map_err(|e| DataError::BadConfig(e.to_string()))?;
            let bright = Normal::new(0.0f32, config.brightness_std.max(1e-12))
                .map_err(|e| DataError::BadConfig(e.to_string()))?;
            let proto = prototype.as_slice();
            for _ in 0..per_class {
                let shift = if config.brightness_std > 0.0 { bright.sample(&mut rng) } else { 0.0 };
                for &p in proto {
                    let eps = if config.noise_std > 0.0 { noise.sample(&mut rng) } else { 0.0 };
                    data.push(p + eps + shift);
                }
                labels.push(class);
            }
        }
        // Deterministically interleave classes so mini-batches are mixed even
        // without shuffling.
        let mut order: Vec<usize> = (0..n).collect();
        let mut rng = rng_for(seed, &[0x4F_52_44, split]); // "ORD"
        for i in (1..order.len()).rev() {
            let j = rng.gen_range(0..=i);
            order.swap(i, j);
        }
        let mut shuffled = Vec::with_capacity(n * vol);
        let mut shuffled_labels = Vec::with_capacity(n);
        for &i in &order {
            shuffled.extend_from_slice(&data[i * vol..(i + 1) * vol]);
            shuffled_labels.push(labels[i]);
        }
        let samples =
            Tensor::from_vec(shuffled, &[n, config.channels, config.height, config.width])?;
        Dataset::new(samples, shuffled_labels, config.num_classes)
    }

    /// The configuration that generated this dataset.
    pub fn config(&self) -> &SynthVisionConfig {
        &self.config
    }

    /// The class prototype images (flattened), one per class.
    pub fn prototypes(&self) -> &[Tensor] {
        &self.prototypes
    }

    /// The training split.
    pub fn train(&self) -> Dataset {
        self.train.clone()
    }

    /// The test split.
    pub fn test(&self) -> Dataset {
        self.test.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let cfg = SynthVisionConfig::small();
        let (a_train, a_test) = cfg.generate(5).unwrap();
        let (b_train, b_test) = cfg.generate(5).unwrap();
        assert_eq!(a_train, b_train);
        assert_eq!(a_test, b_test);
        let (c_train, _) = cfg.generate(6).unwrap();
        assert_ne!(a_train, c_train);
    }

    #[test]
    fn split_sizes_and_shapes() {
        let cfg = SynthVisionConfig::small();
        let (train, test) = cfg.generate(1).unwrap();
        assert_eq!(train.len(), 4 * 10);
        assert_eq!(test.len(), 4 * 4);
        assert_eq!(train.sample_dims(), &[1, 4, 4]);
        assert_eq!(train.num_classes(), 4);
        // Balanced classes.
        assert!(train.class_counts().iter().all(|&c| c == 10));
        assert!(test.class_counts().iter().all(|&c| c == 4));
    }

    #[test]
    fn train_and_test_differ() {
        let (train, test) = SynthVisionConfig::small().generate(2).unwrap();
        assert_ne!(
            &train.samples().as_slice()[..16],
            &test.samples().as_slice()[..16],
            "splits must not share samples"
        );
    }

    #[test]
    fn prototypes_have_requested_scale() {
        let cfg = SynthVisionConfig::default();
        let sv = SynthVision::new(cfg.clone(), 3).unwrap();
        assert_eq!(sv.prototypes().len(), 10);
        for p in sv.prototypes() {
            let rms = (p.norm_l2_sq() / p.len() as f32).sqrt();
            assert!((rms - cfg.prototype_scale).abs() < 1e-3, "rms {rms}");
        }
    }

    #[test]
    fn validates_config() {
        let mut cfg = SynthVisionConfig::small();
        cfg.num_classes = 0;
        assert!(cfg.generate(0).is_err());
        let mut cfg = SynthVisionConfig::small();
        cfg.train_per_class = 0;
        assert!(cfg.generate(0).is_err());
        let mut cfg = SynthVisionConfig::small();
        cfg.noise_std = f32::NAN;
        assert!(cfg.generate(0).is_err());
        let mut cfg = SynthVisionConfig::small();
        cfg.noise_std = 0.0;
        cfg.brightness_std = 0.0;
        assert!(cfg.generate(0).is_ok(), "zero noise is a valid (trivial) task");
    }

    #[test]
    fn classes_are_separable_at_low_noise() {
        // Nearest-prototype classification should be near-perfect when noise
        // is far below prototype scale.
        let cfg =
            SynthVisionConfig { noise_std: 0.1, brightness_std: 0.0, ..SynthVisionConfig::small() };
        let sv = SynthVision::new(cfg, 7).unwrap();
        let test = sv.test();
        let vol = test.sample_volume();
        let mut correct = 0usize;
        for i in 0..test.len() {
            let x = &test.samples().as_slice()[i * vol..(i + 1) * vol];
            let mut best = (f32::INFINITY, 0usize);
            for (c, p) in sv.prototypes().iter().enumerate() {
                let d: f32 = x.iter().zip(p.as_slice()).map(|(a, b)| (a - b).powi(2)).sum();
                if d < best.0 {
                    best = (d, c);
                }
            }
            if best.1 == test.labels()[i] {
                correct += 1;
            }
        }
        let acc = correct as f32 / test.len() as f32;
        assert!(acc > 0.95, "nearest-prototype accuracy {acc}");
    }

    #[test]
    fn classes_overlap_at_high_noise() {
        let cfg = SynthVisionConfig { noise_std: 10.0, ..SynthVisionConfig::small() };
        let sv = SynthVision::new(cfg, 7).unwrap();
        let test = sv.test();
        let vol = test.sample_volume();
        let mut correct = 0usize;
        for i in 0..test.len() {
            let x = &test.samples().as_slice()[i * vol..(i + 1) * vol];
            let mut best = (f32::INFINITY, 0usize);
            for (c, p) in sv.prototypes().iter().enumerate() {
                let d: f32 = x.iter().zip(p.as_slice()).map(|(a, b)| (a - b).powi(2)).sum();
                if d < best.0 {
                    best = (d, c);
                }
            }
            if best.1 == test.labels()[i] {
                correct += 1;
            }
        }
        let acc = correct as f32 / test.len() as f32;
        assert!(acc < 0.9, "high noise should hurt accuracy, got {acc}");
    }
}
