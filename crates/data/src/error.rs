//! Error type for dataset construction and partitioning.

use std::fmt;

use fedms_tensor::TensorError;

/// Errors produced by dataset generation, batching and partitioning.
#[derive(Debug, Clone, PartialEq)]
pub enum DataError {
    /// An underlying tensor operation failed.
    Tensor(TensorError),
    /// The dataset definition is inconsistent (labels vs samples, class
    /// count, empty dataset, …).
    Inconsistent(String),
    /// A sample index exceeds the dataset size.
    IndexOutOfBounds {
        /// The offending index.
        index: usize,
        /// Number of samples in the dataset.
        len: usize,
    },
    /// A configuration value is invalid (zero clients, non-positive α, …).
    BadConfig(String),
}

impl fmt::Display for DataError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DataError::Tensor(e) => write!(f, "tensor error: {e}"),
            DataError::Inconsistent(msg) => write!(f, "inconsistent dataset: {msg}"),
            DataError::IndexOutOfBounds { index, len } => {
                write!(f, "sample index {index} out of bounds for dataset of {len}")
            }
            DataError::BadConfig(msg) => write!(f, "bad configuration: {msg}"),
        }
    }
}

impl std::error::Error for DataError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DataError::Tensor(e) => Some(e),
            _ => None,
        }
    }
}

impl From<TensorError> for DataError {
    fn from(e: TensorError) -> Self {
        DataError::Tensor(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_nonempty() {
        for e in [
            DataError::Tensor(TensorError::Empty("x")),
            DataError::Inconsistent("labels".into()),
            DataError::IndexOutOfBounds { index: 5, len: 2 },
            DataError::BadConfig("alpha".into()),
        ] {
            assert!(!e.to_string().is_empty());
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<DataError>();
    }
}
