//! `SynthSensor`: a synthetic multivariate time-series dataset for the
//! paper's Industrial-IoT motivation.
//!
//! Each class is a machine "condition" with a characteristic per-sensor
//! waveform (sinusoid with class-specific frequency, amplitude and phase
//! offsets); samples add AR(1)-correlated measurement noise and a random
//! phase jitter. Together with [`crate::SynthVision`] this gives the
//! examples a second, structurally different domain to federate over.

use fedms_tensor::rng::rng_for;
use fedms_tensor::Tensor;
use rand::Rng;
use rand_distr::{Distribution, Normal};
use serde::{Deserialize, Serialize};

use crate::{DataError, Dataset, Result};

/// Configuration for [`SynthSensorConfig::generate`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SynthSensorConfig {
    /// Number of machine conditions (classes).
    pub num_classes: usize,
    /// Number of sensors (channels).
    pub sensors: usize,
    /// Readings per sensor per sample.
    pub timesteps: usize,
    /// Training samples per class.
    pub train_per_class: usize,
    /// Test samples per class.
    pub test_per_class: usize,
    /// Standard deviation of the AR(1) measurement-noise innovations.
    pub noise_std: f32,
    /// AR(1) coefficient of the measurement noise in `[0, 1)`.
    pub noise_ar: f32,
    /// Maximum random phase jitter (fraction of a period) per sample.
    pub phase_jitter: f32,
}

impl Default for SynthSensorConfig {
    /// A 6-condition, 4-sensor, 32-step configuration calibrated so a small
    /// MLP plateaus around 80–90% — non-trivial but learnable.
    fn default() -> Self {
        SynthSensorConfig {
            num_classes: 6,
            sensors: 4,
            timesteps: 32,
            train_per_class: 120,
            test_per_class: 30,
            noise_std: 0.8,
            noise_ar: 0.7,
            phase_jitter: 0.25,
        }
    }
}

impl SynthSensorConfig {
    /// A miniature configuration for tests.
    pub fn small() -> Self {
        SynthSensorConfig {
            num_classes: 3,
            sensors: 2,
            timesteps: 16,
            train_per_class: 12,
            test_per_class: 4,
            noise_std: 0.3,
            noise_ar: 0.5,
            phase_jitter: 0.1,
        }
    }

    /// Scalars per sample (`sensors · timesteps`).
    pub fn sample_volume(&self) -> usize {
        self.sensors * self.timesteps
    }

    /// Generates the train and test splits deterministically from `seed`.
    ///
    /// # Errors
    ///
    /// Returns [`DataError::BadConfig`] for empty dimensions or invalid
    /// noise parameters.
    pub fn generate(&self, seed: u64) -> Result<(Dataset, Dataset)> {
        if self.num_classes == 0 || self.sensors == 0 || self.timesteps == 0 {
            return Err(DataError::BadConfig("sensor dataset dimensions must be positive".into()));
        }
        if self.train_per_class == 0 || self.test_per_class == 0 {
            return Err(DataError::BadConfig("per-class sample counts must be positive".into()));
        }
        if !(self.noise_std.is_finite()
            && self.noise_std >= 0.0
            && (0.0..1.0).contains(&self.noise_ar)
            && self.phase_jitter.is_finite()
            && self.phase_jitter >= 0.0)
        {
            return Err(DataError::BadConfig("invalid noise parameters".into()));
        }

        // Class signatures: per sensor a frequency in [1, 4] periods, an
        // amplitude in [0.5, 1.5] and a phase offset.
        let mut signatures = Vec::with_capacity(self.num_classes);
        for class in 0..self.num_classes {
            let mut rng = rng_for(seed, &[0x0053_4947, class as u64]); // "SIG"
            let per_sensor: Vec<(f32, f32, f32)> = (0..self.sensors)
                .map(|_| {
                    (
                        rng.gen_range(1.0f32..4.0),
                        rng.gen_range(0.5f32..1.5),
                        rng.gen_range(0.0f32..std::f32::consts::TAU),
                    )
                })
                .collect();
            signatures.push(per_sensor);
        }

        let train = self.sample_split(&signatures, seed, 0, self.train_per_class)?;
        let test = self.sample_split(&signatures, seed, 1, self.test_per_class)?;
        Ok((train, test))
    }

    fn sample_split(
        &self,
        signatures: &[Vec<(f32, f32, f32)>],
        seed: u64,
        split: u64,
        per_class: usize,
    ) -> Result<Dataset> {
        let n = per_class * self.num_classes;
        let vol = self.sample_volume();
        let mut data = Vec::with_capacity(n * vol);
        let mut labels = Vec::with_capacity(n);
        for (class, signature) in signatures.iter().enumerate() {
            let mut rng = rng_for(seed, &[0x53_4E53, split, class as u64]); // "SNS"
            let noise = Normal::new(0.0f32, self.noise_std.max(1e-12))
                .map_err(|e| DataError::BadConfig(e.to_string()))?;
            for _ in 0..per_class {
                let jitter = if self.phase_jitter > 0.0 {
                    rng.gen_range(-self.phase_jitter..self.phase_jitter) * std::f32::consts::TAU
                } else {
                    0.0
                };
                for &(freq, amp, phase) in signature {
                    let mut ar = 0.0f32;
                    for t in 0..self.timesteps {
                        let angle = std::f32::consts::TAU * freq * t as f32 / self.timesteps as f32
                            + phase
                            + jitter;
                        if self.noise_std > 0.0 {
                            ar = self.noise_ar * ar + noise.sample(&mut rng);
                        }
                        data.push(amp * angle.sin() + ar);
                    }
                }
                labels.push(class);
            }
        }
        // Deterministic shuffle so mini-batches mix classes.
        let mut order: Vec<usize> = (0..n).collect();
        let mut rng = rng_for(seed, &[0x53_4F52, split]); // "SOR"
        for i in (1..order.len()).rev() {
            let j = rng.gen_range(0..=i);
            order.swap(i, j);
        }
        let mut shuffled = Vec::with_capacity(n * vol);
        let mut shuffled_labels = Vec::with_capacity(n);
        for &i in &order {
            shuffled.extend_from_slice(&data[i * vol..(i + 1) * vol]);
            shuffled_labels.push(labels[i]);
        }
        let samples = Tensor::from_vec(shuffled, &[n, self.sensors, self.timesteps])?;
        Dataset::new(samples, shuffled_labels, self.num_classes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let cfg = SynthSensorConfig::small();
        let (a, at) = cfg.generate(3).unwrap();
        let (b, bt) = cfg.generate(3).unwrap();
        assert_eq!(a, b);
        assert_eq!(at, bt);
        let (c, _) = cfg.generate(4).unwrap();
        assert_ne!(a, c);
    }

    #[test]
    fn shapes_and_balance() {
        let cfg = SynthSensorConfig::small();
        let (train, test) = cfg.generate(1).unwrap();
        assert_eq!(train.len(), 36);
        assert_eq!(test.len(), 12);
        assert_eq!(train.sample_dims(), &[2, 16]);
        assert!(train.class_counts().iter().all(|&c| c == 12));
        assert_eq!(cfg.sample_volume(), 32);
    }

    #[test]
    fn validates_config() {
        let mut cfg = SynthSensorConfig::small();
        cfg.sensors = 0;
        assert!(cfg.generate(0).is_err());
        let mut cfg = SynthSensorConfig::small();
        cfg.noise_ar = 1.0;
        assert!(cfg.generate(0).is_err());
        let mut cfg = SynthSensorConfig::small();
        cfg.test_per_class = 0;
        assert!(cfg.generate(0).is_err());
    }

    #[test]
    fn classes_are_distinguishable_at_low_noise() {
        // Nearest-centroid on the flattened waveform should beat chance
        // comfortably when noise is low and jitter is off.
        let cfg =
            SynthSensorConfig { noise_std: 0.1, phase_jitter: 0.0, ..SynthSensorConfig::small() };
        let (train, test) = cfg.generate(5).unwrap();
        let vol = cfg.sample_volume();
        // Class centroids from the training set.
        let mut centroids = vec![vec![0.0f32; vol]; cfg.num_classes];
        let counts = train.class_counts();
        for i in 0..train.len() {
            let label = train.labels()[i];
            for (c, &v) in
                centroids[label].iter_mut().zip(&train.samples().as_slice()[i * vol..(i + 1) * vol])
            {
                *c += v / counts[label] as f32;
            }
        }
        let mut correct = 0usize;
        for i in 0..test.len() {
            let x = &test.samples().as_slice()[i * vol..(i + 1) * vol];
            let best = (0..cfg.num_classes)
                .min_by(|&a, &b| {
                    let da: f32 = x.iter().zip(&centroids[a]).map(|(v, c)| (v - c) * (v - c)).sum();
                    let db: f32 = x.iter().zip(&centroids[b]).map(|(v, c)| (v - c) * (v - c)).sum();
                    da.partial_cmp(&db).unwrap()
                })
                .unwrap();
            if best == test.labels()[i] {
                correct += 1;
            }
        }
        let acc = correct as f32 / test.len() as f32;
        assert!(acc > 0.8, "nearest-centroid accuracy {acc}");
    }

    #[test]
    fn flattens_for_mlp_training() {
        let (train, _) = SynthSensorConfig::small().generate(6).unwrap();
        let flat = train.flattened();
        assert_eq!(flat.sample_dims(), &[32]);
    }
}
