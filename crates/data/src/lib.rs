//! Datasets and non-iid partitioning for the Fed-MS reproduction.
//!
//! The paper evaluates on CIFAR-10 split across 50 clients with a Dirichlet
//! partitioner (Hsu et al., 2019). This crate provides:
//!
//! * [`SynthVision`] — a seeded 10-class synthetic image dataset standing in
//!   for CIFAR-10 (see DESIGN.md for the substitution argument),
//! * [`Dataset`] — an in-memory sample store with batching and subsetting,
//! * [`DirichletPartitioner`] — the `D_α` non-iid splitter from the paper,
//! * [`LabelHistogram`] — per-client class statistics (Figure 4), and
//! * [`BatchSampler`] — seeded mini-batch index streams for local SGD.
//!
//! # Example
//!
//! ```
//! use fedms_data::{DirichletPartitioner, SynthVisionConfig};
//!
//! let (train, _test) = SynthVisionConfig::small().generate(7)?;
//! let parts = DirichletPartitioner::new(10.0)?.partition(&train, 5, 7)?;
//! assert_eq!(parts.len(), 5);
//! assert_eq!(parts.iter().map(Vec::len).sum::<usize>(), train.len());
//! # Ok::<(), fedms_data::DataError>(())
//! ```

mod augment;
mod dataset;
mod error;
mod histogram;
mod partition;
mod sampler;
mod sensor;
mod synth;

pub use augment::{augment_dataset, Augmentation};
pub use dataset::Dataset;
pub use error::DataError;
pub use histogram::LabelHistogram;
pub use partition::{mean_tv_distance, DirichletPartitioner};
pub use sampler::BatchSampler;
pub use sensor::SynthSensorConfig;
pub use synth::{SynthVision, SynthVisionConfig};

/// Crate-wide `Result` alias using [`DataError`].
pub type Result<T> = std::result::Result<T, DataError>;
