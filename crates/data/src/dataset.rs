//! In-memory labelled datasets.

use fedms_tensor::Tensor;
use serde::{Deserialize, Serialize};

use crate::{DataError, Result};

/// A labelled dataset held in memory: samples stacked along axis 0 of one
/// tensor, plus integer class labels.
///
/// Samples may be images (`(N, C, H, W)`) or flat feature vectors
/// (`(N, D)`); [`Dataset::flattened`] converts the former to the latter for
/// MLP training.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Dataset {
    samples: Tensor,
    labels: Vec<usize>,
    num_classes: usize,
}

impl Dataset {
    /// Creates a dataset, validating sample/label agreement.
    ///
    /// # Errors
    ///
    /// Returns [`DataError::Inconsistent`] if the label count differs from
    /// the number of samples, any label is out of range, the dataset is
    /// empty, or the sample tensor is rank 0.
    pub fn new(samples: Tensor, labels: Vec<usize>, num_classes: usize) -> Result<Self> {
        if samples.rank() == 0 {
            return Err(DataError::Inconsistent("samples must have a batch axis".into()));
        }
        let n = samples.dims()[0];
        if n == 0 {
            return Err(DataError::Inconsistent("dataset must contain samples".into()));
        }
        if labels.len() != n {
            return Err(DataError::Inconsistent(format!(
                "{} labels for {n} samples",
                labels.len()
            )));
        }
        if num_classes == 0 {
            return Err(DataError::Inconsistent("num_classes must be positive".into()));
        }
        if let Some(&bad) = labels.iter().find(|&&l| l >= num_classes) {
            return Err(DataError::Inconsistent(format!(
                "label {bad} out of range for {num_classes} classes"
            )));
        }
        Ok(Dataset { samples, labels, num_classes })
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// Whether the dataset is empty (never true for a constructed dataset).
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Number of classes.
    pub fn num_classes(&self) -> usize {
        self.num_classes
    }

    /// The full sample tensor.
    pub fn samples(&self) -> &Tensor {
        &self.samples
    }

    /// The labels, aligned with axis 0 of [`Dataset::samples`].
    pub fn labels(&self) -> &[usize] {
        &self.labels
    }

    /// Per-sample shape (dims after the batch axis).
    pub fn sample_dims(&self) -> &[usize] {
        &self.samples.dims()[1..]
    }

    /// Number of scalars per sample.
    pub fn sample_volume(&self) -> usize {
        self.sample_dims().iter().product()
    }

    /// Gathers the samples and labels at `indices` into a batch.
    ///
    /// # Errors
    ///
    /// Returns [`DataError::IndexOutOfBounds`] for an invalid index and
    /// [`DataError::Inconsistent`] for an empty index list.
    pub fn batch(&self, indices: &[usize]) -> Result<(Tensor, Vec<usize>)> {
        if indices.is_empty() {
            return Err(DataError::Inconsistent("batch indices must be non-empty".into()));
        }
        let vol = self.sample_volume();
        let mut data = Vec::with_capacity(indices.len() * vol);
        let mut labels = Vec::with_capacity(indices.len());
        for &i in indices {
            if i >= self.len() {
                return Err(DataError::IndexOutOfBounds { index: i, len: self.len() });
            }
            data.extend_from_slice(&self.samples.as_slice()[i * vol..(i + 1) * vol]);
            labels.push(self.labels[i]);
        }
        let mut dims = vec![indices.len()];
        dims.extend_from_slice(self.sample_dims());
        Ok((Tensor::from_vec(data, &dims)?, labels))
    }

    /// Builds a new dataset containing only the samples at `indices`
    /// (duplicates allowed, order preserved).
    ///
    /// # Errors
    ///
    /// Same conditions as [`Dataset::batch`].
    pub fn subset(&self, indices: &[usize]) -> Result<Dataset> {
        let (samples, labels) = self.batch(indices)?;
        Dataset::new(samples, labels, self.num_classes)
    }

    /// Returns a copy with each sample flattened to a vector:
    /// `(N, C, H, W) → (N, C·H·W)`.
    pub fn flattened(&self) -> Dataset {
        let n = self.len();
        let vol = self.sample_volume();
        let samples = self.samples.reshape(&[n, vol]).expect("volume is preserved by flattening");
        Dataset { samples, labels: self.labels.clone(), num_classes: self.num_classes }
    }

    /// Returns a copy with every label remapped through `map` — the classic
    /// label-flipping data poisoning used by Byzantine *clients* (extension
    /// experiments; the paper's future work considers malicious clients).
    ///
    /// # Errors
    ///
    /// Returns [`DataError::Inconsistent`] if `map` produces an
    /// out-of-range class.
    pub fn with_mapped_labels(&self, map: impl Fn(usize) -> usize) -> Result<Dataset> {
        let labels: Vec<usize> = self.labels.iter().map(|&l| map(l)).collect();
        Dataset::new(self.samples.clone(), labels, self.num_classes)
    }

    /// Returns a copy with labels rotated by `offset` modulo the class
    /// count (`offset = 1` sends class 0 → 1, …, last → 0) — a standard
    /// label-flip poisoning pattern.
    pub fn with_rotated_labels(&self, offset: usize) -> Dataset {
        self.with_mapped_labels(|l| (l + offset) % self.num_classes)
            .expect("rotation stays in class range")
    }

    /// Per-class sample counts.
    pub fn class_counts(&self) -> Vec<usize> {
        let mut counts = vec![0usize; self.num_classes];
        for &l in &self.labels {
            counts[l] += 1;
        }
        counts
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Dataset {
        let samples = Tensor::linspace(0.0, 11.0, 12).reshape(&[4, 3]).unwrap();
        Dataset::new(samples, vec![0, 1, 1, 2], 3).unwrap()
    }

    #[test]
    fn validates_construction() {
        let s = Tensor::zeros(&[2, 3]);
        assert!(Dataset::new(s.clone(), vec![0], 2).is_err());
        assert!(Dataset::new(s.clone(), vec![0, 2], 2).is_err());
        assert!(Dataset::new(s.clone(), vec![0, 1], 0).is_err());
        assert!(Dataset::new(Tensor::zeros(&[0, 3]), vec![], 2).is_err());
        assert!(Dataset::new(Tensor::scalar(1.0), vec![0], 2).is_err());
        assert!(Dataset::new(s, vec![0, 1], 2).is_ok());
    }

    #[test]
    fn accessors() {
        let d = tiny();
        assert_eq!(d.len(), 4);
        assert!(!d.is_empty());
        assert_eq!(d.num_classes(), 3);
        assert_eq!(d.sample_dims(), &[3]);
        assert_eq!(d.sample_volume(), 3);
        assert_eq!(d.class_counts(), vec![1, 2, 1]);
    }

    #[test]
    fn batch_gathers_in_order() {
        let d = tiny();
        let (x, y) = d.batch(&[2, 0]).unwrap();
        assert_eq!(x.dims(), &[2, 3]);
        assert_eq!(x.as_slice(), &[6.0, 7.0, 8.0, 0.0, 1.0, 2.0]);
        assert_eq!(y, vec![1, 0]);
    }

    #[test]
    fn batch_validates() {
        let d = tiny();
        assert!(d.batch(&[]).is_err());
        assert!(matches!(d.batch(&[4]), Err(DataError::IndexOutOfBounds { .. })));
    }

    #[test]
    fn subset_preserves_classes() {
        let d = tiny();
        let s = d.subset(&[1, 2, 1]).unwrap();
        assert_eq!(s.len(), 3);
        assert_eq!(s.labels(), &[1, 1, 1]);
        assert_eq!(s.num_classes(), 3);
    }

    #[test]
    fn label_mapping_and_rotation() {
        let d = tiny();
        let rotated = d.with_rotated_labels(1);
        assert_eq!(rotated.labels(), &[1, 2, 2, 0]);
        assert_eq!(rotated.samples(), d.samples());
        let identity = d.with_rotated_labels(3);
        assert_eq!(identity.labels(), d.labels());
        // Out-of-range mapping is rejected.
        assert!(d.with_mapped_labels(|_| 99).is_err());
    }

    #[test]
    fn flatten_images() {
        let samples = Tensor::zeros(&[2, 3, 4, 4]);
        let d = Dataset::new(samples, vec![0, 1], 2).unwrap();
        let f = d.flattened();
        assert_eq!(f.samples().dims(), &[2, 48]);
        assert_eq!(f.labels(), d.labels());
    }
}
