//! Seeded mini-batch sampling for local SGD.

use fedms_tensor::rng::rng_for;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::Rng;

use crate::{DataError, Result};

/// Produces mini-batches of sample indices, uniformly at random with
/// replacement across batches (each batch is a without-replacement draw) —
/// the `ξ_{t,i}^k` of the paper's local-training stage.
///
/// # Example
///
/// ```
/// use fedms_data::BatchSampler;
///
/// let mut s = BatchSampler::new(10, 4, 42)?;
/// let batch = s.next_batch();
/// assert_eq!(batch.len(), 4);
/// assert!(batch.iter().all(|&i| i < 10));
/// # Ok::<(), fedms_data::DataError>(())
/// ```
#[derive(Debug, Clone)]
pub struct BatchSampler {
    len: usize,
    batch_size: usize,
    rng: StdRng,
    scratch: Vec<usize>,
}

impl BatchSampler {
    /// Creates a sampler over `len` samples with the given batch size
    /// (clamped to `len`), seeded deterministically.
    ///
    /// # Errors
    ///
    /// Returns [`DataError::BadConfig`] if `len` or `batch_size` is zero.
    pub fn new(len: usize, batch_size: usize, seed: u64) -> Result<Self> {
        if len == 0 || batch_size == 0 {
            return Err(DataError::BadConfig(
                "sampler needs positive length and batch size".into(),
            ));
        }
        Ok(BatchSampler {
            len,
            batch_size: batch_size.min(len),
            rng: rng_for(seed, &[0x42_41_54_43]), // "BATC"
            scratch: (0..len).collect(),
        })
    }

    /// The effective batch size (may be smaller than requested for tiny
    /// shards).
    pub fn batch_size(&self) -> usize {
        self.batch_size
    }

    /// Draws the next mini-batch of indices (without replacement inside the
    /// batch).
    pub fn next_batch(&mut self) -> Vec<usize> {
        if self.batch_size * 4 >= self.len {
            // Partial Fisher–Yates: shuffle a prefix of the index pool.
            for i in 0..self.batch_size {
                let j = self.rng.gen_range(i..self.len);
                self.scratch.swap(i, j);
            }
            self.scratch[..self.batch_size].to_vec()
        } else {
            // Sparse draw for small batches over big shards.
            let mut picked = Vec::with_capacity(self.batch_size);
            while picked.len() < self.batch_size {
                let c = self.rng.gen_range(0..self.len);
                if !picked.contains(&c) {
                    picked.push(c);
                }
            }
            picked
        }
    }

    /// Returns all indices in a fresh random order (one epoch).
    pub fn epoch(&mut self) -> Vec<usize> {
        let mut order: Vec<usize> = (0..self.len).collect();
        order.shuffle(&mut self.rng);
        order
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn validates_config() {
        assert!(BatchSampler::new(0, 2, 0).is_err());
        assert!(BatchSampler::new(5, 0, 0).is_err());
    }

    #[test]
    fn batch_size_clamped() {
        let s = BatchSampler::new(3, 10, 0).unwrap();
        assert_eq!(s.batch_size(), 3);
    }

    #[test]
    fn batches_are_in_range_and_distinct() {
        let mut s = BatchSampler::new(100, 16, 1).unwrap();
        for _ in 0..50 {
            let b = s.next_batch();
            assert_eq!(b.len(), 16);
            let set: HashSet<_> = b.iter().collect();
            assert_eq!(set.len(), 16, "indices within a batch must be distinct");
            assert!(b.iter().all(|&i| i < 100));
        }
    }

    #[test]
    fn sparse_path_in_range_and_distinct() {
        let mut s = BatchSampler::new(1000, 8, 2).unwrap();
        for _ in 0..20 {
            let b = s.next_batch();
            let set: HashSet<_> = b.iter().collect();
            assert_eq!(set.len(), 8);
            assert!(b.iter().all(|&i| i < 1000));
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let mut a = BatchSampler::new(50, 8, 7).unwrap();
        let mut b = BatchSampler::new(50, 8, 7).unwrap();
        for _ in 0..10 {
            assert_eq!(a.next_batch(), b.next_batch());
        }
        let mut c = BatchSampler::new(50, 8, 8).unwrap();
        assert_ne!(a.next_batch(), c.next_batch());
    }

    #[test]
    fn coverage_over_many_batches() {
        // Every index should eventually appear.
        let mut s = BatchSampler::new(20, 5, 3).unwrap();
        let mut seen = HashSet::new();
        for _ in 0..100 {
            seen.extend(s.next_batch());
        }
        assert_eq!(seen.len(), 20);
    }

    #[test]
    fn epoch_is_permutation() {
        let mut s = BatchSampler::new(30, 4, 4).unwrap();
        let e = s.epoch();
        let set: HashSet<_> = e.iter().collect();
        assert_eq!(e.len(), 30);
        assert_eq!(set.len(), 30);
    }
}
