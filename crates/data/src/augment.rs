//! Image augmentation for `(N, C, H, W)` datasets.

use fedms_tensor::rng::rng_for;
use fedms_tensor::Tensor;
use rand::Rng;
use rand_distr::{Distribution, Normal};
use serde::{Deserialize, Serialize};

use crate::{DataError, Dataset, Result};

/// One augmentation operation applied per generated sample.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Augmentation {
    /// Mirror the image horizontally with probability `p`.
    HorizontalFlip {
        /// Flip probability in `[0, 1]`.
        p: f64,
    },
    /// Translate by up to ±`max` pixels in each spatial axis (zero fill).
    Shift {
        /// Maximum shift magnitude per axis.
        max: usize,
    },
    /// Add a global brightness offset drawn from `N(0, std²)`.
    Brightness {
        /// Offset standard deviation.
        std: f32,
    },
}

impl Augmentation {
    fn validate(&self) -> Result<()> {
        match *self {
            Augmentation::HorizontalFlip { p } => {
                if !(p.is_finite() && (0.0..=1.0).contains(&p)) {
                    return Err(DataError::BadConfig(format!("bad flip probability {p}")));
                }
            }
            Augmentation::Shift { .. } => {}
            Augmentation::Brightness { std } => {
                if !(std.is_finite() && std >= 0.0) {
                    return Err(DataError::BadConfig(format!("bad brightness std {std}")));
                }
            }
        }
        Ok(())
    }

    fn apply<R: Rng + ?Sized>(&self, image: &mut [f32], c: usize, h: usize, w: usize, rng: &mut R) {
        match *self {
            Augmentation::HorizontalFlip { p } => {
                if p > 0.0 && rng.gen_bool(p) {
                    for ci in 0..c {
                        let plane = &mut image[ci * h * w..(ci + 1) * h * w];
                        for row in plane.chunks_mut(w) {
                            row.reverse();
                        }
                    }
                }
            }
            Augmentation::Shift { max } => {
                if max == 0 {
                    return;
                }
                let dx = rng.gen_range(-(max as i64)..=max as i64);
                let dy = rng.gen_range(-(max as i64)..=max as i64);
                if dx == 0 && dy == 0 {
                    return;
                }
                let mut out = vec![0.0f32; image.len()];
                for ci in 0..c {
                    for y in 0..h as i64 {
                        for x in 0..w as i64 {
                            let sy = y - dy;
                            let sx = x - dx;
                            if sy >= 0 && sy < h as i64 && sx >= 0 && sx < w as i64 {
                                out[ci * h * w + (y as usize) * w + x as usize] =
                                    image[ci * h * w + (sy as usize) * w + sx as usize];
                            }
                        }
                    }
                }
                image.copy_from_slice(&out);
            }
            Augmentation::Brightness { std } => {
                if std > 0.0 {
                    let normal = Normal::new(0.0f32, std).expect("validated std");
                    let shift = normal.sample(rng);
                    for v in image.iter_mut() {
                        *v += shift;
                    }
                }
            }
        }
    }
}

/// Expands an image dataset with augmented copies: the output holds the
/// original samples followed by `copies` augmented variants of each, every
/// variant passing through all `ops` in order. Deterministic in `seed`.
///
/// # Errors
///
/// Returns [`DataError::BadConfig`] for invalid operations or non-image
/// (rank ≠ 3 per sample) datasets.
pub fn augment_dataset(
    dataset: &Dataset,
    ops: &[Augmentation],
    copies: usize,
    seed: u64,
) -> Result<Dataset> {
    for op in ops {
        op.validate()?;
    }
    let dims = dataset.sample_dims();
    if dims.len() != 3 {
        return Err(DataError::BadConfig(format!(
            "augmentation needs (C, H, W) samples, got {dims:?}"
        )));
    }
    let (c, h, w) = (dims[0], dims[1], dims[2]);
    let vol = dataset.sample_volume();
    let n = dataset.len();
    let total = n * (1 + copies);
    let mut data = Vec::with_capacity(total * vol);
    let mut labels = Vec::with_capacity(total);
    data.extend_from_slice(dataset.samples().as_slice());
    labels.extend_from_slice(dataset.labels());
    for copy in 0..copies {
        for i in 0..n {
            let mut rng = rng_for(seed, &[0xA7_67, copy as u64, i as u64]);
            let mut image = dataset.samples().as_slice()[i * vol..(i + 1) * vol].to_vec();
            for op in ops {
                op.apply(&mut image, c, h, w, &mut rng);
            }
            data.extend_from_slice(&image);
            labels.push(dataset.labels()[i]);
        }
    }
    let samples = Tensor::from_vec(data, &[total, c, h, w])?;
    Dataset::new(samples, labels, dataset.num_classes())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn image_dataset() -> Dataset {
        // 2 samples of 1×2×3 with recognisable values.
        let samples = Tensor::from_vec(
            vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 10.0, 20.0, 30.0, 40.0, 50.0, 60.0],
            &[2, 1, 2, 3],
        )
        .unwrap();
        Dataset::new(samples, vec![0, 1], 2).unwrap()
    }

    #[test]
    fn expands_with_originals_first() {
        let d = image_dataset();
        let out = augment_dataset(&d, &[Augmentation::Brightness { std: 0.1 }], 2, 1).unwrap();
        assert_eq!(out.len(), 6);
        assert_eq!(&out.samples().as_slice()[..12], d.samples().as_slice());
        assert_eq!(out.labels(), &[0, 1, 0, 1, 0, 1]);
    }

    #[test]
    fn flip_reverses_rows() {
        let d = image_dataset();
        let out = augment_dataset(&d, &[Augmentation::HorizontalFlip { p: 1.0 }], 1, 2).unwrap();
        // Augmented copy of sample 0 starts at offset 12.
        assert_eq!(&out.samples().as_slice()[12..18], &[3.0, 2.0, 1.0, 6.0, 5.0, 4.0]);
    }

    #[test]
    fn zero_probability_flip_is_identity() {
        let d = image_dataset();
        let out = augment_dataset(&d, &[Augmentation::HorizontalFlip { p: 0.0 }], 1, 3).unwrap();
        assert_eq!(&out.samples().as_slice()[12..24], d.samples().as_slice());
    }

    #[test]
    fn shift_zero_fills() {
        let d = image_dataset();
        let out = augment_dataset(&d, &[Augmentation::Shift { max: 2 }], 1, 4).unwrap();
        // Mass is conserved or reduced (zero fill), never increased.
        let orig_sum: f32 = d.samples().as_slice()[..6].iter().map(|v| v.abs()).sum();
        let aug_sum: f32 = out.samples().as_slice()[12..18].iter().map(|v| v.abs()).sum();
        assert!(aug_sum <= orig_sum + 1e-5);
    }

    #[test]
    fn deterministic_in_seed() {
        let d = image_dataset();
        let ops = [
            Augmentation::HorizontalFlip { p: 0.5 },
            Augmentation::Shift { max: 1 },
            Augmentation::Brightness { std: 0.2 },
        ];
        let a = augment_dataset(&d, &ops, 3, 7).unwrap();
        let b = augment_dataset(&d, &ops, 3, 7).unwrap();
        assert_eq!(a, b);
        let c = augment_dataset(&d, &ops, 3, 8).unwrap();
        assert_ne!(a, c);
    }

    #[test]
    fn validates_inputs() {
        let d = image_dataset();
        assert!(augment_dataset(&d, &[Augmentation::HorizontalFlip { p: 1.5 }], 1, 0).is_err());
        assert!(augment_dataset(&d, &[Augmentation::Brightness { std: -1.0 }], 1, 0).is_err());
        let flat = d.flattened();
        assert!(augment_dataset(&flat, &[Augmentation::Shift { max: 1 }], 1, 0).is_err());
    }
}
