//! Per-client label statistics (the data behind Figure 4).

use serde::{Deserialize, Serialize};

use crate::{DataError, Dataset, Result};

/// The class histogram of one client's shard.
///
/// Figure 4 of the paper visualises these histograms for the first ten
/// clients at each `D_α`; the `fig4` experiment binary prints them.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LabelHistogram {
    counts: Vec<usize>,
}

impl LabelHistogram {
    /// Computes the histogram of the samples at `indices` in `dataset`.
    ///
    /// # Errors
    ///
    /// Returns [`DataError::IndexOutOfBounds`] for an invalid index.
    pub fn from_indices(dataset: &Dataset, indices: &[usize]) -> Result<Self> {
        let mut counts = vec![0usize; dataset.num_classes()];
        for &i in indices {
            if i >= dataset.len() {
                return Err(DataError::IndexOutOfBounds { index: i, len: dataset.len() });
            }
            counts[dataset.labels()[i]] += 1;
        }
        Ok(LabelHistogram { counts })
    }

    /// Per-class counts.
    pub fn counts(&self) -> &[usize] {
        &self.counts
    }

    /// Total samples in the shard.
    pub fn total(&self) -> usize {
        self.counts.iter().sum()
    }

    /// Per-class fractions (empty shard → all zeros).
    pub fn fractions(&self) -> Vec<f64> {
        let total = self.total();
        if total == 0 {
            return vec![0.0; self.counts.len()];
        }
        self.counts.iter().map(|&c| c as f64 / total as f64).collect()
    }

    /// Shannon entropy of the label distribution in nats; `ln(classes)` for
    /// a uniform shard, 0 for a single-class shard.
    pub fn entropy(&self) -> f64 {
        self.fractions().iter().filter(|&&p| p > 0.0).map(|&p| -p * p.ln()).sum()
    }

    /// Renders a compact bar string (one character per class, height 0–9)
    /// used by the `fig4` experiment output.
    pub fn bar_string(&self) -> String {
        let max = self.counts.iter().copied().max().unwrap_or(0).max(1);
        self.counts
            .iter()
            .map(|&c| {
                let level = (c * 9 + max / 2) / max;
                char::from_digit(level as u32, 10).unwrap_or('9')
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fedms_tensor::Tensor;

    fn ds() -> Dataset {
        Dataset::new(Tensor::zeros(&[6, 2]), vec![0, 0, 1, 1, 1, 2], 3).unwrap()
    }

    #[test]
    fn counts_and_total() {
        let h = LabelHistogram::from_indices(&ds(), &[0, 2, 3, 5]).unwrap();
        assert_eq!(h.counts(), &[1, 2, 1]);
        assert_eq!(h.total(), 4);
    }

    #[test]
    fn rejects_bad_index() {
        assert!(LabelHistogram::from_indices(&ds(), &[6]).is_err());
    }

    #[test]
    fn fractions_sum_to_one() {
        let h = LabelHistogram::from_indices(&ds(), &[0, 1, 2]).unwrap();
        let s: f64 = h.fractions().iter().sum();
        assert!((s - 1.0).abs() < 1e-12);
        let empty = LabelHistogram::from_indices(&ds(), &[]).unwrap();
        assert_eq!(empty.fractions(), vec![0.0, 0.0, 0.0]);
    }

    #[test]
    fn entropy_extremes() {
        let single = LabelHistogram::from_indices(&ds(), &[2, 3, 4]).unwrap();
        assert_eq!(single.entropy(), 0.0);
        let uniform = LabelHistogram::from_indices(&ds(), &[0, 2, 5]).unwrap();
        assert!((uniform.entropy() - 3.0f64.ln()).abs() < 1e-12);
    }

    #[test]
    fn bar_string_has_one_char_per_class() {
        let h = LabelHistogram::from_indices(&ds(), &[0, 1, 2, 5]).unwrap();
        let bars = h.bar_string();
        assert_eq!(bars.chars().count(), 3);
        assert_eq!(bars.chars().next(), Some('9')); // max class renders full height
    }
}
