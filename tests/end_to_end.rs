//! End-to-end integration tests across the whole workspace, exercised
//! through the `fedms` facade exactly as a downstream user would.

use fedms::{AttackKind, FedMsConfig, FilterKind, SynthVisionConfig, UploadStrategy};

/// A mid-size federation that is still fast in debug builds.
fn mid_config(seed: u64) -> FedMsConfig {
    let mut cfg = FedMsConfig::tiny(seed);
    cfg.clients = 12;
    cfg.servers = 5;
    cfg.dataset = SynthVisionConfig {
        num_classes: 4,
        channels: 1,
        height: 4,
        width: 4,
        train_per_class: 30,
        test_per_class: 10,
        noise_std: 0.8,
        prototype_scale: 1.0,
        brightness_std: 0.1,
    };
    cfg.model = fedms::ModelSpec::Mlp { widths: vec![16, 12, 4] };
    cfg.rounds = 10;
    cfg.eval_every = 10;
    cfg
}

#[test]
fn fedms_beats_vanilla_under_random_attack() {
    let mut fedms = mid_config(3);
    fedms.byzantine_count = 1;
    fedms.attack = AttackKind::Random { lo: -10.0, hi: 10.0 };
    fedms.filter = FilterKind::TrimmedMean { beta: 0.2 };
    let fedms_acc = fedms.run().unwrap().final_accuracy().unwrap();

    let mut vanilla = mid_config(3);
    vanilla.byzantine_count = 1;
    vanilla.attack = AttackKind::Random { lo: -10.0, hi: 10.0 };
    vanilla.filter = FilterKind::Mean;
    let vanilla_acc = vanilla.run().unwrap().final_accuracy().unwrap();

    assert!(
        fedms_acc > vanilla_acc + 0.15,
        "fed-ms {fedms_acc} should clearly beat vanilla {vanilla_acc}"
    );
}

#[test]
fn attack_free_fedms_matches_vanilla() {
    // Figure 3(a): with no Byzantine servers the trimmed filter costs
    // almost nothing relative to plain averaging.
    let mut fedms = mid_config(4);
    fedms.filter = FilterKind::TrimmedMean { beta: 0.2 };
    let fedms_acc = fedms.run().unwrap().final_accuracy().unwrap();

    let mut vanilla = mid_config(4);
    vanilla.filter = FilterKind::Mean;
    let vanilla_acc = vanilla.run().unwrap().final_accuracy().unwrap();

    assert!(
        (fedms_acc - vanilla_acc).abs() < 0.15,
        "attack-free gap too large: fed-ms {fedms_acc} vs vanilla {vanilla_acc}"
    );
}

#[test]
fn runs_are_bit_deterministic() {
    let mut cfg = mid_config(5);
    cfg.byzantine_count = 2;
    cfg.attack = AttackKind::Noise { std: 1.0 };
    let a = cfg.run().unwrap();
    let b = cfg.run().unwrap();
    assert_eq!(a, b);
}

#[test]
fn different_seeds_differ() {
    let a = mid_config(6).run().unwrap();
    let b = mid_config(7).run().unwrap();
    assert_ne!(a, b);
}

#[test]
fn equivocating_attack_is_survivable() {
    // The paper's worst case: Byzantine servers send different models to
    // different clients. The per-client filter still recovers.
    let mut cfg = mid_config(8);
    cfg.byzantine_count = 1;
    cfg.equivocate = true;
    cfg.attack = AttackKind::Random { lo: -10.0, hi: 10.0 };
    cfg.filter = FilterKind::TrimmedMean { beta: 0.2 };
    let acc = cfg.run().unwrap().final_accuracy().unwrap();
    assert!(acc > 0.5, "equivocation should not break fed-ms, got {acc}");
}

#[test]
fn sparse_upload_message_count_matches_single_server_fl() {
    let mut cfg = mid_config(9);
    cfg.upload = UploadStrategy::Sparse;
    let result = cfg.run().unwrap();
    // K uploads per round — the Section IV-A communication claim.
    assert_eq!(result.total_comm.upload_messages, (cfg.clients * cfg.rounds) as u64);

    let mut full = mid_config(9);
    full.upload = UploadStrategy::Full;
    let full_result = full.run().unwrap();
    assert_eq!(
        full_result.total_comm.upload_messages,
        (full.clients * full.servers * full.rounds) as u64
    );
}

#[test]
fn all_paper_attacks_complete_with_defence() {
    for attack in [
        AttackKind::Noise { std: 1.0 },
        AttackKind::Random { lo: -10.0, hi: 10.0 },
        AttackKind::Safeguard { gamma: 0.6 },
        AttackKind::Backward { delay: 2 },
    ] {
        let mut cfg = mid_config(10);
        cfg.byzantine_count = 2;
        cfg.attack = attack;
        cfg.filter = FilterKind::TrimmedMean { beta: 0.4 };
        cfg.rounds = 5;
        cfg.eval_every = 5;
        let result = cfg.run().unwrap();
        assert!(result.final_accuracy().unwrap().is_finite());
    }
}

#[test]
fn half_byzantine_defeats_the_filter() {
    // Feasibility bound: B = P/2 leaves no honest majority per dimension;
    // even the trimmed mean cannot help (the paper requires B <= P/2 with
    // strict minority for the guarantee).
    let mut cfg = mid_config(11);
    cfg.servers = 4;
    cfg.byzantine_count = 2; // exactly half
    cfg.attack = AttackKind::Random { lo: -10.0, hi: 10.0 };
    cfg.filter = FilterKind::TrimmedMean { beta: 0.49 };
    let majority_byz = cfg.run().unwrap().final_accuracy().unwrap();

    let mut safe = mid_config(11);
    safe.servers = 4;
    safe.byzantine_count = 1;
    safe.attack = AttackKind::Random { lo: -10.0, hi: 10.0 };
    safe.filter = FilterKind::TrimmedMean { beta: 0.49 };
    let minority_byz = safe.run().unwrap().final_accuracy().unwrap();

    assert!(
        minority_byz > majority_byz,
        "minority case {minority_byz} should beat the half-byzantine case {majority_byz}"
    );
}
