//! Integration tests that assemble the federation from the individual
//! substrate crates (rather than the high-level `FedMsConfig`), verifying
//! that the public APIs compose the way DESIGN.md promises.

use fedms::{
    AttackKind, DirichletPartitioner, EngineConfig, EstimatorPolicy, LrSchedule, Mean,
    MobileNetNanoConfig, ModelSpec, NoiseAttack, RecoveryPolicy, RotatingAttack, ServerAttack,
    SimulationEngine, SynthVisionConfig, ThreatSchedule, Topology, TrimmedMean, UploadStrategy,
};

fn small_data() -> (fedms::Dataset, fedms::Dataset) {
    SynthVisionConfig {
        num_classes: 3,
        channels: 1,
        height: 4,
        width: 4,
        train_per_class: 20,
        test_per_class: 6,
        noise_std: 0.6,
        prototype_scale: 1.0,
        brightness_std: 0.1,
    }
    .generate(99)
    .unwrap()
}

#[test]
fn manual_assembly_with_trimmed_mean_filter() {
    let (train, test) = small_data();
    let partitions = DirichletPartitioner::new(5.0).unwrap().partition(&train, 6, 1).unwrap();
    let topology = Topology::new(6, 4, [2]).unwrap();
    let config = EngineConfig {
        topology,
        model: ModelSpec::Mlp { widths: vec![16, 8, 3] },
        upload: UploadStrategy::Sparse,
        local_epochs: 2,
        batch_size: 8,
        schedule: LrSchedule::Constant(0.1),
        seed: 5,
        eval_every: 1,
        eval_clients: 0,
        parallel: false,
        threads: 0,
        eval_after_local: false,
        recovery: RecoveryPolicy::disabled(),
        cohort: 0,
        threat: ThreatSchedule::none(),
        estimator: EstimatorPolicy::default(),
        backend: fedms::BackendKind::Scalar,
    };
    let attacks: Vec<(usize, Box<dyn ServerAttack>)> =
        vec![(2, Box::new(NoiseAttack::new(1.0).unwrap()))];
    let mut engine = SimulationEngine::new(
        config,
        &train,
        &test,
        &partitions,
        Box::new(TrimmedMean::new(0.25).unwrap()),
        attacks,
    )
    .unwrap();
    let result = engine.run(4).unwrap();
    assert_eq!(result.rounds.len(), 4);
    assert!(result.final_accuracy().unwrap() > 0.3);
}

#[test]
fn mobilenet_nano_federation_trains() {
    // The paper's model family (inverted residuals) through the whole
    // pipeline — image-layout data, conv forward/backward, aggregation.
    let (train, test) = small_data();
    let partitions = DirichletPartitioner::new(10.0).unwrap().partition(&train, 4, 2).unwrap();
    let nano = MobileNetNanoConfig {
        in_channels: 1,
        in_h: 4,
        in_w: 4,
        stem_channels: 4,
        blocks: vec![(2, 4, 1)],
        num_classes: 3,
    };
    let config = EngineConfig {
        topology: Topology::new(4, 3, []).unwrap(),
        model: ModelSpec::MobileNetNano(nano),
        upload: UploadStrategy::Sparse,
        local_epochs: 1,
        batch_size: 8,
        schedule: LrSchedule::Constant(0.05),
        seed: 6,
        eval_every: 2,
        eval_clients: 0,
        parallel: false,
        threads: 0,
        eval_after_local: false,
        recovery: RecoveryPolicy::disabled(),
        cohort: 0,
        threat: ThreatSchedule::none(),
        estimator: EstimatorPolicy::default(),
        backend: fedms::BackendKind::Scalar,
    };
    let mut engine =
        SimulationEngine::new(config, &train, &test, &partitions, Box::new(Mean::new()), vec![])
            .unwrap();
    let result = engine.run(2).unwrap();
    assert!(result.final_accuracy().unwrap().is_finite());
    assert!(result.total_comm.upload_bytes > 0);
}

#[test]
fn engine_exposes_client_models_for_inspection() {
    let (train, test) = small_data();
    let partitions = DirichletPartitioner::new(5.0).unwrap().partition(&train, 4, 3).unwrap();
    let config = EngineConfig {
        topology: Topology::new(4, 2, []).unwrap(),
        model: ModelSpec::Mlp { widths: vec![16, 3] },
        upload: UploadStrategy::Full,
        local_epochs: 1,
        batch_size: 4,
        schedule: LrSchedule::Constant(0.05),
        seed: 7,
        eval_every: 1,
        eval_clients: 0,
        parallel: false,
        threads: 0,
        eval_after_local: false,
        recovery: RecoveryPolicy::disabled(),
        cohort: 0,
        threat: ThreatSchedule::none(),
        estimator: EstimatorPolicy::default(),
        backend: fedms::BackendKind::Scalar,
    };
    let mut engine =
        SimulationEngine::new(config, &train, &test, &partitions, Box::new(Mean::new()), vec![])
            .unwrap();
    let w0 = engine.initial_model().clone();
    let before = engine.client_models();
    assert!(before.iter().all(|m| m == &w0), "all clients start from w0");
    engine.step_round(false).unwrap();
    let after = engine.client_models();
    assert!(after.iter().all(|m| m != &w0), "training must move the models");
    // With full upload and no Byzantine servers, every server aggregate is
    // identical, so every client's filtered model is identical.
    assert!(after.iter().all(|m| m == &after[0]));
}

#[test]
fn rotating_adaptive_adversary_is_survivable() {
    // The adaptive adversary cycles through all four paper attacks during
    // one run; the trimmed-mean filter handles every phase.
    let (train, test) = small_data();
    let partitions = DirichletPartitioner::new(5.0).unwrap().partition(&train, 6, 9).unwrap();
    let pool: Vec<Box<dyn ServerAttack>> =
        AttackKind::paper_suite().iter().map(|k| k.build().unwrap()).collect();
    let rotating = RotatingAttack::new(pool, 2).unwrap();
    let config = EngineConfig {
        topology: Topology::new(6, 4, [1]).unwrap(),
        model: ModelSpec::Mlp { widths: vec![16, 8, 3] },
        upload: UploadStrategy::Sparse,
        local_epochs: 2,
        batch_size: 8,
        schedule: LrSchedule::Constant(0.1),
        seed: 9,
        eval_every: 8,
        eval_clients: 0,
        parallel: false,
        threads: 0,
        eval_after_local: false,
        recovery: RecoveryPolicy::disabled(),
        cohort: 0,
        threat: ThreatSchedule::none(),
        estimator: EstimatorPolicy::default(),
        backend: fedms::BackendKind::Scalar,
    };
    let mut engine = SimulationEngine::new(
        config,
        &train,
        &test,
        &partitions,
        Box::new(TrimmedMean::new(0.25).unwrap()),
        vec![(1, Box::new(rotating))],
    )
    .unwrap();
    engine.enable_event_log(4096);
    let result = engine.run(8).unwrap();
    assert!(result.final_accuracy().unwrap() > 0.4);
    // The event log shows the Byzantine server active in every round.
    let byz_disseminations = engine
        .event_log()
        .unwrap()
        .of_kind("disseminate")
        .into_iter()
        .filter(|e| matches!(e, fedms::sim::RoundEvent::Disseminated { byzantine: true, .. }))
        .count();
    assert_eq!(byz_disseminations, 8);
}

#[test]
fn attack_trait_objects_compose_via_kind() {
    // AttackKind -> Box<dyn ServerAttack> -> engine, for every paper attack.
    let (train, test) = small_data();
    let partitions = DirichletPartitioner::new(5.0).unwrap().partition(&train, 4, 4).unwrap();
    for kind in AttackKind::paper_suite() {
        let config = EngineConfig {
            topology: Topology::new(4, 3, [0]).unwrap(),
            model: ModelSpec::Mlp { widths: vec![16, 3] },
            upload: UploadStrategy::Sparse,
            local_epochs: 1,
            batch_size: 4,
            schedule: LrSchedule::Constant(0.05),
            seed: 8,
            eval_every: 1,
            eval_clients: 2,
            parallel: false,
            threads: 0,
            eval_after_local: false,
            recovery: RecoveryPolicy::disabled(),
            cohort: 0,
            threat: ThreatSchedule::none(),
            estimator: EstimatorPolicy::default(),
            backend: fedms::BackendKind::Scalar,
        };
        let mut engine = SimulationEngine::new(
            config,
            &train,
            &test,
            &partitions,
            Box::new(TrimmedMean::new(0.34).unwrap()),
            vec![(0, kind.build().unwrap())],
        )
        .unwrap();
        engine.run(2).unwrap();
    }
}
