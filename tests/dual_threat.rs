//! Integration tests for the dual threat model (Byzantine servers AND
//! clients) — the extension beyond the paper's server-only adversary.

use fedms::{
    AttackKind, ClientAttackKind, FedMsConfig, FilterKind, SynthVisionConfig,
};

fn base(seed: u64) -> FedMsConfig {
    let mut cfg = FedMsConfig::tiny(seed);
    cfg.clients = 12;
    cfg.servers = 4;
    cfg.dataset = SynthVisionConfig {
        num_classes: 4,
        channels: 1,
        height: 4,
        width: 4,
        train_per_class: 30,
        test_per_class: 10,
        noise_std: 0.8,
        prototype_scale: 1.0,
        brightness_std: 0.1,
    };
    cfg.model = fedms::ModelSpec::Mlp { widths: vec![16, 12, 4] };
    cfg.rounds = 10;
    cfg.eval_every = 10;
    cfg
}

#[test]
fn robust_server_rule_survives_byzantine_clients() {
    // 3 of 12 clients upload garbage; all clients use the plain mean as
    // their own filter and all servers receive every upload, so the server
    // rule is the *only* line of defence: the plain mean collapses, the
    // median stays healthy.
    let mut naive = base(21);
    naive.byzantine_clients = 3;
    naive.client_attack = ClientAttackKind::Random { lo: -10.0, hi: 10.0 };
    naive.filter = FilterKind::Mean;
    naive.upload = fedms::UploadStrategy::Full;
    naive.server_filter = FilterKind::Mean;
    let naive_acc = naive.run().unwrap().final_accuracy().unwrap();

    let mut dual = base(21);
    dual.byzantine_clients = 3;
    dual.client_attack = ClientAttackKind::Random { lo: -10.0, hi: 10.0 };
    dual.filter = FilterKind::Mean;
    dual.upload = fedms::UploadStrategy::Full;
    dual.server_filter = FilterKind::Median;
    let dual_acc = dual.run().unwrap().final_accuracy().unwrap();

    assert!(
        dual_acc > naive_acc + 0.15,
        "median server rule {dual_acc} should beat naive mean {naive_acc}"
    );
}

#[test]
fn dual_threat_simultaneous_attacks() {
    // Byzantine servers (Noise) AND Byzantine clients (sign flip), with
    // the symmetric defence: the run must stay healthy.
    let mut cfg = base(22);
    cfg.byzantine_count = 1;
    cfg.attack = AttackKind::Noise { std: 1.0 };
    cfg.byzantine_clients = 2;
    cfg.client_attack = ClientAttackKind::SignFlip { scale: 1.0 };
    cfg.filter = FilterKind::TrimmedMean { beta: 0.25 };
    cfg.server_filter = FilterKind::Median;
    let acc = cfg.run().unwrap().final_accuracy().unwrap();
    assert!(acc > 0.5, "dual defence should survive the dual attack, got {acc}");
}

#[test]
fn byzantine_clients_excluded_from_metric() {
    // The accuracy metric averages benign clients only; a run where the
    // Byzantine clients' own models are garbage must not drag it down when
    // the defence holds.
    let mut cfg = base(23);
    cfg.byzantine_clients = 2;
    cfg.client_attack = ClientAttackKind::Random { lo: -10.0, hi: 10.0 };
    cfg.server_filter = FilterKind::Median;
    let result = cfg.run().unwrap();
    assert!(result.final_accuracy().unwrap() > 0.4);
}

#[test]
fn amplify_attack_needs_robust_servers() {
    // Update amplification (×20) through a plain mean visibly perturbs
    // training; the median rule bounds it.
    let mut naive = base(24);
    naive.byzantine_clients = 3;
    naive.client_attack = ClientAttackKind::Amplify { factor: 20.0 };
    naive.server_filter = FilterKind::Mean;
    let naive_acc = naive.run().unwrap().final_accuracy().unwrap();

    let mut dual = base(24);
    dual.byzantine_clients = 3;
    dual.client_attack = ClientAttackKind::Amplify { factor: 20.0 };
    dual.server_filter = FilterKind::Median;
    let dual_acc = dual.run().unwrap().final_accuracy().unwrap();

    assert!(
        dual_acc + 0.05 >= naive_acc,
        "robust rule should never be much worse: {dual_acc} vs {naive_acc}"
    );
}

#[test]
fn dual_runs_stay_deterministic() {
    let mut cfg = base(25);
    cfg.byzantine_count = 1;
    cfg.byzantine_clients = 2;
    cfg.client_attack = ClientAttackKind::Noise { std: 1.0 };
    cfg.server_filter = FilterKind::TrimmedMean { beta: 0.2 };
    let a = cfg.run().unwrap();
    let b = cfg.run().unwrap();
    assert_eq!(a, b);
}
