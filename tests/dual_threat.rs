//! Integration tests for the dual threat model (Byzantine servers AND
//! clients) — the extension beyond the paper's server-only adversary —
//! plus the crash-fault combinations layered on top of it.

use fedms::{
    AttackKind, ClientAttackKind, CoreError, FedMsConfig, FilterKind, SimError, SynthVisionConfig,
};

fn base(seed: u64) -> FedMsConfig {
    let mut cfg = FedMsConfig::tiny(seed);
    cfg.clients = 12;
    cfg.servers = 4;
    cfg.dataset = SynthVisionConfig {
        num_classes: 4,
        channels: 1,
        height: 4,
        width: 4,
        train_per_class: 30,
        test_per_class: 10,
        noise_std: 0.8,
        prototype_scale: 1.0,
        brightness_std: 0.1,
    };
    cfg.model = fedms::ModelSpec::Mlp { widths: vec![16, 12, 4] };
    cfg.rounds = 10;
    cfg.eval_every = 10;
    cfg
}

#[test]
fn robust_server_rule_survives_byzantine_clients() {
    // 3 of 12 clients upload garbage; all clients use the plain mean as
    // their own filter and all servers receive every upload, so the server
    // rule is the *only* line of defence: the plain mean collapses, the
    // median stays healthy.
    let mut naive = base(21);
    naive.byzantine_clients = 3;
    naive.client_attack = ClientAttackKind::Random { lo: -10.0, hi: 10.0 };
    naive.filter = FilterKind::Mean;
    naive.upload = fedms::UploadStrategy::Full;
    naive.server_filter = FilterKind::Mean;
    let naive_acc = naive.run().unwrap().final_accuracy().unwrap();

    let mut dual = base(21);
    dual.byzantine_clients = 3;
    dual.client_attack = ClientAttackKind::Random { lo: -10.0, hi: 10.0 };
    dual.filter = FilterKind::Mean;
    dual.upload = fedms::UploadStrategy::Full;
    dual.server_filter = FilterKind::Median;
    let dual_acc = dual.run().unwrap().final_accuracy().unwrap();

    assert!(
        dual_acc > naive_acc + 0.15,
        "median server rule {dual_acc} should beat naive mean {naive_acc}"
    );
}

#[test]
fn dual_threat_simultaneous_attacks() {
    // Byzantine servers (Noise) AND Byzantine clients (sign flip), with
    // the symmetric defence: the run must stay healthy.
    let mut cfg = base(22);
    cfg.byzantine_count = 1;
    cfg.attack = AttackKind::Noise { std: 1.0 };
    cfg.byzantine_clients = 2;
    cfg.client_attack = ClientAttackKind::SignFlip { scale: 1.0 };
    cfg.filter = FilterKind::TrimmedMean { beta: 0.25 };
    cfg.server_filter = FilterKind::Median;
    let acc = cfg.run().unwrap().final_accuracy().unwrap();
    assert!(acc > 0.5, "dual defence should survive the dual attack, got {acc}");
}

#[test]
fn byzantine_clients_excluded_from_metric() {
    // The accuracy metric averages benign clients only; a run where the
    // Byzantine clients' own models are garbage must not drag it down when
    // the defence holds.
    let mut cfg = base(23);
    cfg.byzantine_clients = 2;
    cfg.client_attack = ClientAttackKind::Random { lo: -10.0, hi: 10.0 };
    cfg.server_filter = FilterKind::Median;
    let result = cfg.run().unwrap();
    assert!(result.final_accuracy().unwrap() > 0.4);
}

#[test]
fn amplify_attack_needs_robust_servers() {
    // Update amplification (×20) through a plain mean visibly perturbs
    // training; the median rule bounds it.
    let mut naive = base(24);
    naive.byzantine_clients = 3;
    naive.client_attack = ClientAttackKind::Amplify { factor: 20.0 };
    naive.server_filter = FilterKind::Mean;
    let naive_acc = naive.run().unwrap().final_accuracy().unwrap();

    let mut dual = base(24);
    dual.byzantine_clients = 3;
    dual.client_attack = ClientAttackKind::Amplify { factor: 20.0 };
    dual.server_filter = FilterKind::Median;
    let dual_acc = dual.run().unwrap().final_accuracy().unwrap();

    assert!(
        dual_acc + 0.05 >= naive_acc,
        "robust rule should never be much worse: {dual_acc} vs {naive_acc}"
    );
}

#[test]
fn crash_plus_byzantine_still_converges() {
    // One Byzantine and one crashed server out of four: the faulty set
    // stays below P/2, so the adaptive filter (trim = B of whatever
    // arrives) must keep training healthy.
    let mut cfg = base(26);
    cfg.byzantine_count = 1;
    cfg.attack = AttackKind::Random { lo: -10.0, hi: 10.0 };
    cfg.filter = FilterKind::fedms_adaptive(1);
    cfg.fault.crashed_servers = 1;
    cfg.fault.crash_round = 3;
    let acc = cfg.run().unwrap().final_accuracy().unwrap();
    assert!(acc > 0.5, "crash + Byzantine below P/2 should converge, got {acc}");
}

#[test]
fn quorum_collapse_is_a_typed_error_not_a_panic() {
    // Two of four servers crash at round 1 while one of the survivors is
    // Byzantine: clients see P' = 2 ≤ 2B models, which no trim count can
    // defend. The run must fail fast with the structured quorum error.
    let mut cfg = base(27);
    cfg.byzantine_count = 1;
    cfg.attack = AttackKind::Noise { std: 1.0 };
    cfg.filter = FilterKind::fedms_adaptive(1);
    cfg.fault.crashed_servers = 2;
    cfg.fault.crash_round = 1;
    match cfg.run() {
        Err(CoreError::Sim(SimError::DegradedQuorum { round, received, needed, .. })) => {
            assert_eq!(round, 1);
            assert_eq!(received, 2);
            assert_eq!(needed, 2);
        }
        other => panic!("expected DegradedQuorum, got {other:?}"),
    }
}

#[test]
fn table_ii_scale_crash_faults_cost_little_accuracy() {
    // The issue's acceptance scenario: 10 servers, 2 Byzantine, 2 crashed.
    // The degraded run must land within 5 accuracy points of the
    // fault-free run at the same seed.
    let mut baseline = base(28);
    baseline.servers = 10;
    baseline.byzantine_count = 2;
    baseline.attack = AttackKind::Noise { std: 1.0 };
    baseline.filter = FilterKind::fedms_adaptive(2);
    let clean_acc = baseline.run().unwrap().final_accuracy().unwrap();

    let mut faulted = base(28);
    faulted.servers = 10;
    faulted.byzantine_count = 2;
    faulted.attack = AttackKind::Noise { std: 1.0 };
    faulted.filter = FilterKind::fedms_adaptive(2);
    faulted.fault.crashed_servers = 2;
    faulted.fault.crash_round = 2;
    let fault_acc = faulted.run().unwrap().final_accuracy().unwrap();

    assert!(clean_acc > 0.5, "fault-free baseline should converge, got {clean_acc}");
    assert!(
        (clean_acc - fault_acc).abs() <= 0.05,
        "2 crashes should cost at most 5 points: clean {clean_acc} vs faulted {fault_acc}"
    );
}

#[test]
fn dual_runs_stay_deterministic() {
    let mut cfg = base(25);
    cfg.byzantine_count = 1;
    cfg.byzantine_clients = 2;
    cfg.client_attack = ClientAttackKind::Noise { std: 1.0 };
    cfg.server_filter = FilterKind::TrimmedMean { beta: 0.2 };
    let a = cfg.run().unwrap();
    let b = cfg.run().unwrap();
    assert_eq!(a, b);
}
