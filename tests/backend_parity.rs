//! Backend-parity suite.
//!
//! Two guarantees are pinned here:
//!
//! 1. **Bit-exactness of the default path.** The `ScalarBackend` is the
//!    code that predates the backend abstraction, moved verbatim; a full
//!    engine run must stay byte-identical to the pre-refactor engine. The
//!    digests below were recorded from the engine *before* the backend
//!    subsystem was introduced, so any arithmetic drift in the default
//!    path — reordered reductions, changed scratch-buffer contents,
//!    different iteration order — fails these tests.
//! 2. **Statistical parity of the optimized path.** `BlockedBackend`
//!    reassociates reductions (blocked/multi-accumulator kernels), so it
//!    is *not* bit-identical; it must instead track the scalar accuracy
//!    trajectory within a stated tolerance on the same federation.

use fedms::core::fnv1a64;
use fedms::{FedMsConfig, ModelSpec};

/// Canonical byte serialization of a run: the full `RunResult` JSON.
/// Accuracy/loss are f32s formatted by serde_json's shortest-roundtrip
/// float printer, so equal digests mean bit-equal trajectories.
fn run_digest(cfg: &FedMsConfig) -> u64 {
    let result = cfg.run().expect("engine run");
    let json = serde_json::to_string(&result).expect("serialize RunResult");
    fnv1a64(json.as_bytes())
}

/// A tiny MLP federation with Byzantine servers and the paper's filter —
/// exercises linear layers, softmax-CE loss, SGD, and trimmed-mean
/// aggregation end to end.
fn mlp_cfg() -> FedMsConfig {
    let mut cfg = FedMsConfig::tiny(7);
    cfg.byzantine_count = 1;
    cfg.parallel = true; // client-parallel phases are bit-identical
    cfg
}

/// A miniature MobileNet federation — exercises conv/depthwise-conv
/// forward/backward (im2col/col2im) through the engine.
fn nano_cfg() -> FedMsConfig {
    let mut cfg = FedMsConfig::tiny(11);
    cfg.clients = 4;
    cfg.rounds = 2;
    cfg.model = ModelSpec::MobileNetNano(fedms::MobileNetNanoConfig {
        in_channels: 1,
        in_h: 4,
        in_w: 4,
        stem_channels: 4,
        blocks: vec![(2, 4, 1)],
        num_classes: 4,
    });
    cfg
}

/// Digest of `mlp_cfg()` recorded on the pre-backend engine.
const MLP_DIGEST: u64 = 3679570173011649185;
/// Digest of `nano_cfg()` recorded on the pre-backend engine.
const NANO_DIGEST: u64 = 4397706935609085444;

#[test]
fn scalar_backend_mlp_run_is_byte_identical_to_pre_refactor() {
    assert_eq!(
        run_digest(&mlp_cfg()),
        MLP_DIGEST,
        "default (scalar) MLP trajectory drifted from the pre-backend engine"
    );
}

#[test]
fn scalar_backend_conv_run_is_byte_identical_to_pre_refactor() {
    assert_eq!(
        run_digest(&nano_cfg()),
        NANO_DIGEST,
        "default (scalar) conv trajectory drifted from the pre-backend engine"
    );
}

/// Full-engine statistical parity: the blocked backend must track the
/// scalar accuracy/loss trajectory on the same federation. Its kernels
/// reassociate f32 reductions, so runs are not bit-identical — but over a
/// short run the drift stays far below the accuracy scale.
#[cfg(feature = "backend-blocked")]
mod blocked {
    use super::{mlp_cfg, nano_cfg};
    use fedms::{BackendKind, FedMsConfig};

    fn trajectories(cfg: &FedMsConfig) -> (Vec<f32>, Vec<f32>) {
        let scalar = cfg.run().expect("scalar run");
        let mut blocked_cfg = cfg.clone();
        blocked_cfg.backend = BackendKind::Blocked;
        let blocked = blocked_cfg.run().expect("blocked run");
        let acc = |r: &fedms::RunResult| -> Vec<f32> {
            r.rounds.iter().map(|m| m.mean_accuracy).collect()
        };
        (acc(&scalar), acc(&blocked))
    }

    fn assert_tracks(cfg: &FedMsConfig, tol: f32) {
        let (scalar, blocked) = trajectories(cfg);
        assert_eq!(scalar.len(), blocked.len(), "evaluation cadence must agree");
        assert!(!scalar.is_empty(), "run must evaluate at least once");
        for (round, (s, b)) in scalar.iter().zip(blocked.iter()).enumerate() {
            assert!(
                (s - b).abs() <= tol,
                "accuracy diverged at eval {round}: scalar {s}, blocked {b}"
            );
        }
    }

    #[test]
    fn blocked_backend_tracks_scalar_mlp_accuracy() {
        assert_tracks(&mlp_cfg(), 0.1);
    }

    #[test]
    fn blocked_backend_tracks_scalar_conv_accuracy() {
        assert_tracks(&nano_cfg(), 0.1);
    }
}
