//! Bit-exact determinism across execution modes — the invariant every
//! other test leans on. Parallel client training must be indistinguishable
//! from sequential, with and without an active fault plan.

use fedms::{AttackKind, FaultPlan, FedMsConfig, FilterKind, SynthVisionConfig};

fn base(seed: u64) -> FedMsConfig {
    let mut cfg = FedMsConfig::tiny(seed);
    cfg.clients = 8;
    cfg.servers = 5;
    cfg.dataset = SynthVisionConfig {
        num_classes: 3,
        channels: 1,
        height: 4,
        width: 4,
        train_per_class: 24,
        test_per_class: 8,
        noise_std: 0.8,
        prototype_scale: 1.0,
        brightness_std: 0.1,
    };
    cfg.model = fedms::ModelSpec::Mlp { widths: vec![16, 8, 3] };
    cfg.rounds = 6;
    cfg.eval_every = 3;
    cfg
}

#[test]
fn parallel_matches_sequential_bit_for_bit() {
    let mut seq = base(71);
    seq.parallel = false;
    let mut par = base(71);
    par.parallel = true;
    assert_eq!(seq.run().unwrap(), par.run().unwrap());
}

#[test]
fn parallel_matches_sequential_under_active_faults() {
    // Crash + straggler + duplicating downlinks alongside a Byzantine
    // server: the view never shrinks below quorum, and thread count must
    // still be unobservable.
    let fault = |cfg: &mut FedMsConfig| {
        cfg.byzantine_count = 1;
        cfg.attack = AttackKind::Noise { std: 0.5 };
        cfg.filter = FilterKind::fedms_adaptive(1);
        cfg.fault.crashed_servers = 1;
        cfg.fault.crash_round = 2;
        cfg.fault.straggler_servers = 1;
        cfg.fault.straggler_delay = 1;
        cfg.fault.duplicate_rate = 0.1;
    };
    let mut seq = base(72);
    seq.parallel = false;
    fault(&mut seq);
    let mut par = base(72);
    par.parallel = true;
    fault(&mut par);
    assert_eq!(seq.run().unwrap(), par.run().unwrap());
}

#[test]
fn parallel_matches_sequential_under_lossy_downlinks() {
    // Heavy omission with no Byzantine servers (so no quorum applies and
    // the plain mean tolerates any surviving view size).
    let fault = |cfg: &mut FedMsConfig| {
        cfg.filter = FilterKind::Mean;
        cfg.fault.downlink_omission = 0.2;
        cfg.fault.duplicate_rate = 0.1;
    };
    let mut seq = base(75);
    seq.parallel = false;
    fault(&mut seq);
    let mut par = base(75);
    par.parallel = true;
    fault(&mut par);
    assert_eq!(seq.run().unwrap(), par.run().unwrap());
}

#[test]
fn faulty_runs_replay_identically() {
    let mut cfg = base(73);
    cfg.fault.crashed_servers = 1;
    cfg.fault.crash_round = 3;
    cfg.fault.downlink_omission = 0.1;
    let a = cfg.run().unwrap();
    let b = cfg.run().unwrap();
    assert_eq!(a, b);
}

#[test]
fn fault_plan_sampling_is_a_pure_function_of_the_seed() {
    let cfg = {
        let mut c = base(74);
        c.fault.crashed_servers = 2;
        c.fault.crash_round = 1;
        c.fault.straggler_servers = 1;
        c.fault.straggler_delay = 2;
        c
    };
    let a = FaultPlan::sample(&cfg.fault, cfg.servers, cfg.seed).unwrap();
    let b = FaultPlan::sample(&cfg.fault, cfg.servers, cfg.seed).unwrap();
    assert_eq!(a, b, "same seed must pick the same victims");
    let c = FaultPlan::sample(&cfg.fault, cfg.servers, cfg.seed + 1).unwrap();
    assert_eq!(c.crashed_ids().len(), 2, "spec counts hold under any seed");
    assert_ne!(a, c, "different seeds should (here) pick different victims");
}
