//! Integration tests for bit-exact checkpoint/resume through the facade.

use fedms::{AttackKind, FedMsConfig, FilterKind, Snapshot};

fn cfg(seed: u64) -> FedMsConfig {
    let mut cfg = FedMsConfig::tiny(seed);
    cfg.byzantine_count = 1;
    cfg.attack = AttackKind::Safeguard { gamma: 0.6 }; // history-dependent
    cfg.filter = FilterKind::TrimmedMean { beta: 0.25 };
    cfg.rounds = 6;
    cfg
}

#[test]
fn resume_reproduces_uninterrupted_run() {
    let config = cfg(31);
    let mut reference = config.build_engine().unwrap();
    reference.run(6).unwrap();

    let mut first = config.build_engine().unwrap();
    first.run(2).unwrap();
    let snap = first.snapshot();

    let mut resumed = config.build_engine().unwrap();
    resumed.restore(&snap).unwrap();
    resumed.run(4).unwrap();

    assert_eq!(reference.client_models(), resumed.client_models());
    assert_eq!(reference.result(), resumed.result());
}

#[test]
fn snapshot_survives_json_roundtrip() {
    let config = cfg(32);
    let mut engine = config.build_engine().unwrap();
    engine.run(3).unwrap();
    let snap = engine.snapshot();
    let json = serde_json::to_string(&snap).unwrap();
    let back: Snapshot = serde_json::from_str(&json).unwrap();
    assert_eq!(snap, back);

    // Restoring the deserialised snapshot continues identically.
    let mut a = config.build_engine().unwrap();
    a.restore(&snap).unwrap();
    let mut b = config.build_engine().unwrap();
    b.restore(&back).unwrap();
    a.run(2).unwrap();
    b.run(2).unwrap();
    assert_eq!(a.client_models(), b.client_models());
}

#[test]
fn snapshot_from_wrong_config_is_rejected() {
    let mut engine = cfg(33).build_engine().unwrap();
    engine.run(1).unwrap();
    let snap = engine.snapshot();

    // Different model size → reject.
    let mut other_cfg = cfg(33);
    other_cfg.model = fedms::ModelSpec::Mlp { widths: vec![16, 4] };
    let mut other = other_cfg.build_engine().unwrap();
    assert!(other.restore(&snap).is_err());

    // Different topology → reject.
    let mut other_cfg = cfg(33);
    other_cfg.servers = 3;
    other_cfg.byzantine_count = 1;
    let mut other = other_cfg.build_engine().unwrap();
    assert!(other.restore(&snap).is_err());
}
