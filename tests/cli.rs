//! End-to-end tests of the `fedms` CLI binary.

use std::process::Command;

fn fedms() -> Command {
    Command::new(env!("CARGO_BIN_EXE_fedms"))
}

fn temp_path(name: &str) -> std::path::PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("fedms-cli-test-{}-{name}", std::process::id()));
    p
}

#[test]
fn no_args_prints_usage_and_fails() {
    let out = fedms().output().expect("binary runs");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("usage"));
}

#[test]
fn attacks_and_filters_list() {
    let out = fedms().arg("attacks").output().expect("binary runs");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    for needle in ["noise", "random", "safeguard", "backward", "alie", "label_flip"] {
        assert!(text.contains(needle), "attack list missing {needle}");
    }
    let out = fedms().arg("filters").output().expect("binary runs");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    for needle in ["fed-ms", "vanilla", "krum", "bulyan"] {
        assert!(text.contains(needle), "filter list missing {needle}");
    }
}

#[test]
fn init_config_then_run_roundtrip() {
    let cfg_path = temp_path("cfg.json");
    let out_path = temp_path("metrics.json");
    let out =
        fedms().args(["init-config", cfg_path.to_str().unwrap()]).output().expect("binary runs");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));

    // Shrink the config so the test is fast.
    let body = std::fs::read_to_string(&cfg_path).unwrap();
    let mut cfg: serde_json::Value = serde_json::from_str(&body).unwrap();
    cfg["clients"] = 6.into();
    cfg["servers"] = 3.into();
    cfg["byzantine_count"] = 1.into();
    cfg["dataset"]["train_per_class"] = 5.into();
    cfg["dataset"]["test_per_class"] = 2.into();
    cfg["model"] = serde_json::json!({"Mlp": {"widths": [192, 8, 10]}});
    std::fs::write(&cfg_path, serde_json::to_string(&cfg).unwrap()).unwrap();

    let out = fedms()
        .args([
            "run",
            cfg_path.to_str().unwrap(),
            "--rounds",
            "2",
            "--out",
            out_path.to_str().unwrap(),
        ])
        .output()
        .expect("binary runs");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("final accuracy"));

    // The metrics file parses back into a RunResult.
    let metrics: fedms::RunResult =
        serde_json::from_str(&std::fs::read_to_string(&out_path).unwrap()).unwrap();
    assert_eq!(metrics.rounds.len(), 2);

    let _ = std::fs::remove_file(cfg_path);
    let _ = std::fs::remove_file(out_path);
}

#[test]
fn compare_prints_summary_table() {
    let cfg_path = temp_path("cmp.json");
    let out =
        fedms().args(["init-config", cfg_path.to_str().unwrap()]).output().expect("binary runs");
    assert!(out.status.success());
    let body = std::fs::read_to_string(&cfg_path).unwrap();
    let mut cfg: serde_json::Value = serde_json::from_str(&body).unwrap();
    cfg["clients"] = 6.into();
    cfg["servers"] = 3.into();
    cfg["byzantine_count"] = 1.into();
    cfg["rounds"] = 2.into();
    cfg["dataset"]["train_per_class"] = 5.into();
    cfg["dataset"]["test_per_class"] = 2.into();
    cfg["model"] = serde_json::json!({"Mlp": {"widths": [192, 8, 10]}});
    std::fs::write(&cfg_path, serde_json::to_string(&cfg).unwrap()).unwrap();

    let out = fedms()
        .args(["compare", cfg_path.to_str().unwrap(), cfg_path.to_str().unwrap()])
        .output()
        .expect("binary runs");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("final acc"));
    assert_eq!(text.lines().count(), 3, "header + two rows");
    assert!(fedms().arg("compare").output().unwrap().status.code() != Some(0));
    let _ = std::fs::remove_file(cfg_path);
}

#[test]
fn run_rejects_garbage_config() {
    let cfg_path = temp_path("bad.json");
    std::fs::write(&cfg_path, "{not json").unwrap();
    let out = fedms().args(["run", cfg_path.to_str().unwrap()]).output().expect("binary runs");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("could not load"));
    let _ = std::fs::remove_file(cfg_path);
}

#[test]
fn unknown_flag_rejected() {
    let out = fedms().args(["run", "--bogus"]).output().expect("binary runs");
    assert!(!out.status.success());
}
