//! End-to-end tests of the `fedms exp` subcommand: running the checked-in
//! smoke spec writes a manifest and one record per trial, a re-run skips
//! everything, and `exp check` validates the run directory.

use std::path::PathBuf;
use std::process::Command;

fn fedms() -> Command {
    Command::new(env!("CARGO_BIN_EXE_fedms"))
}

fn temp_dir(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("fedms-exp-cli-{}-{name}", std::process::id()))
}

fn smoke_spec() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("experiments/smoke.toml")
}

#[test]
fn exp_run_writes_manifest_and_records_then_resumes_and_checks() {
    let out_dir = temp_dir("run");
    let _ = std::fs::remove_dir_all(&out_dir);
    let spec = smoke_spec();

    let out = fedms()
        .args(["exp", "run", spec.to_str().unwrap(), "--threads", "2"])
        .args(["--out-dir", out_dir.to_str().unwrap()])
        .output()
        .expect("binary runs");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("2 executed, 0 skipped, 0 failed"), "unexpected summary: {stdout}");

    // One run directory with a manifest, the spec copy, and two records.
    let runs: Vec<_> = std::fs::read_dir(&out_dir).unwrap().map(|e| e.unwrap().path()).collect();
    assert_eq!(runs.len(), 1, "exactly one run id for the smoke spec");
    let run_dir = &runs[0];
    let manifest_body = std::fs::read_to_string(run_dir.join("manifest.json")).unwrap();
    let manifest: serde_json::Value = serde_json::from_str(&manifest_body).unwrap();
    assert_eq!(manifest["name"].as_str(), Some("smoke"));
    assert_eq!(manifest["trials"].as_array().map(Vec::len), Some(2));
    assert!(run_dir.join("spec.toml").is_file());
    let records: Vec<_> =
        std::fs::read_dir(run_dir.join("trials")).unwrap().map(|e| e.unwrap().path()).collect();
    assert_eq!(records.len(), 2);
    for record in &records {
        let body = std::fs::read_to_string(record).unwrap();
        let value: serde_json::Value = serde_json::from_str(&body).expect("record parses");
        assert_eq!(value["status"].as_str(), Some("Completed"), "in {}", record.display());
    }

    // Second run over the same store: everything skips.
    let out = fedms()
        .args(["exp", "run", spec.to_str().unwrap(), "--threads", "2"])
        .args(["--out-dir", out_dir.to_str().unwrap()])
        .output()
        .expect("binary runs");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("0 executed, 2 skipped, 0 failed"), "unexpected summary: {stdout}");

    // `exp check` accepts the complete run directory...
    let out =
        fedms().args(["exp", "check", run_dir.to_str().unwrap()]).output().expect("binary runs");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    assert!(String::from_utf8_lossy(&out.stdout).contains("2/2 trials completed, 0 problem(s)"));

    // ...and flags a deleted record as a problem.
    std::fs::remove_file(&records[0]).unwrap();
    let out =
        fedms().args(["exp", "check", run_dir.to_str().unwrap()]).output().expect("binary runs");
    assert!(!out.status.success(), "check must fail on a missing record");
    assert!(String::from_utf8_lossy(&out.stdout).contains("[missing]"));

    let _ = std::fs::remove_dir_all(&out_dir);
}

#[test]
fn exp_list_prints_expansion_without_running() {
    let out = fedms()
        .args(["exp", "list", smoke_spec().to_str().unwrap()])
        .output()
        .expect("binary runs");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("2 trials"), "unexpected listing: {stdout}");
    assert!(stdout.contains("filter=trimmed:0.25"));
    assert!(stdout.contains("filter=mean"));
}

#[test]
fn exp_run_rejects_bad_specs() {
    let bad = temp_dir("bad-spec.toml");
    std::fs::write(&bad, "[experiment]\nname = \"x\"\n\n[grid]\nfilter = [\"quantum\"]\n").unwrap();
    let out = fedms().args(["exp", "run", bad.to_str().unwrap()]).output().expect("binary runs");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown filter"));
    let _ = std::fs::remove_file(&bad);
}
