//! Offline stand-in for `serde`.
//!
//! The build environment cannot download crates, so the workspace vendors a
//! minimal serialization framework with serde's *surface* API: the
//! [`Serialize`]/[`Deserialize`] traits, `#[derive(Serialize, Deserialize)]`
//! (from the sibling `serde_derive` stub), and the `#[serde(default)]`
//! field attribute.
//!
//! Instead of serde's visitor-based data model, everything funnels through
//! one JSON-like [`Value`] tree; the sibling `serde_json` stub renders and
//! parses that tree as JSON text. Enum representation matches real serde's
//! externally-tagged default (`"Unit"`, `{"Newtype": v}`,
//! `{"Tuple": [..]}`, `{"Struct": {..}}`), so JSON written by this stub is
//! readable by upstream serde and vice versa for the types this workspace
//! defines.

pub use serde_derive::{Deserialize, Serialize};

use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// A JSON-like data tree — the single interchange format of this stub.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Negative integers.
    Int(i64),
    /// Non-negative integers (kept separate so `u64::MAX` survives).
    UInt(u64),
    /// `f32` payloads (kept separate so the shortest-roundtrip rendering of
    /// an `f32` — e.g. `0.1` — is preserved instead of `0.10000000149…`).
    F32(f32),
    /// `f64` payloads.
    Float(f64),
    /// Strings.
    String(String),
    /// Arrays.
    Array(Vec<Value>),
    /// Objects with sorted keys.
    Object(BTreeMap<String, Value>),
}

impl Default for Value {
    fn default() -> Self {
        Value::Null
    }
}

impl Value {
    /// The object map, if this is an object.
    pub fn as_object(&self) -> Option<&BTreeMap<String, Value>> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    /// Mutable object map, if this is an object.
    pub fn as_object_mut(&mut self) -> Option<&mut BTreeMap<String, Value>> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    /// The array items, if this is an array.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// Numeric payload widened to `f64`, if numeric.
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Value::Int(v) => Some(v as f64),
            Value::UInt(v) => Some(v as f64),
            Value::F32(v) => Some(v as f64),
            Value::Float(v) => Some(v),
            _ => None,
        }
    }

    /// Integer payload as `u64`, if non-negative integral.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Value::UInt(v) => Some(v),
            Value::Int(v) if v >= 0 => Some(v as u64),
            _ => None,
        }
    }

    /// Integer payload as `i64`, if it fits.
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Value::Int(v) => Some(v),
            Value::UInt(v) => i64::try_from(v).ok(),
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match *self {
            Value::Bool(b) => Some(b),
            _ => None,
        }
    }

    /// Whether this is `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }
}

static NULL: Value = Value::Null;

impl std::ops::Index<&str> for Value {
    type Output = Value;

    fn index(&self, key: &str) -> &Value {
        self.as_object().and_then(|m| m.get(key)).unwrap_or(&NULL)
    }
}

impl std::ops::IndexMut<&str> for Value {
    fn index_mut(&mut self, key: &str) -> &mut Value {
        match self {
            Value::Object(m) => m.entry(key.to_string()).or_insert(Value::Null),
            other => panic!("cannot index non-object value {other:?} by string key"),
        }
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;

    fn index(&self, idx: usize) -> &Value {
        self.as_array().and_then(|a| a.get(idx)).unwrap_or(&NULL)
    }
}

macro_rules! value_from_int {
    ($($t:ty),*) => {$(
        impl From<$t> for Value {
            fn from(v: $t) -> Value {
                let wide = v as i64;
                if wide < 0 { Value::Int(wide) } else { Value::UInt(wide as u64) }
            }
        }
    )*};
}

value_from_int!(u8, u16, u32, i8, i16, i32, i64, isize);

impl From<u64> for Value {
    fn from(v: u64) -> Value {
        Value::UInt(v)
    }
}

impl From<usize> for Value {
    fn from(v: usize) -> Value {
        Value::UInt(v as u64)
    }
}

impl From<f32> for Value {
    fn from(v: f32) -> Value {
        Value::F32(v)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Value {
        Value::Float(v)
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Value {
        Value::Bool(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Value {
        Value::String(v.to_string())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Value {
        Value::String(v)
    }
}

/// Deserialization error: a human-readable path/expectation message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeError(pub String);

impl DeError {
    /// Builds an error from any displayable message.
    pub fn custom(msg: impl std::fmt::Display) -> Self {
        DeError(msg.to_string())
    }
}

impl std::fmt::Display for DeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for DeError {}

/// Serialization to the [`Value`] tree.
pub trait Serialize {
    /// Converts `self` into a [`Value`].
    fn to_value(&self) -> Value;
}

/// Deserialization from the [`Value`] tree.
pub trait Deserialize: Sized {
    /// Reads `Self` out of a [`Value`].
    ///
    /// # Errors
    ///
    /// Returns [`DeError`] when the value's shape does not match.
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_bool().ok_or_else(|| DeError::custom(format!("expected bool, got {v:?}")))
    }
}

macro_rules! serde_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::UInt(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let raw = v
                    .as_u64()
                    .ok_or_else(|| DeError::custom(format!(
                        concat!("expected ", stringify!($t), ", got {:?}"), v)))?;
                <$t>::try_from(raw).map_err(|_| {
                    DeError::custom(format!(concat!(stringify!($t), " out of range: {}"), raw))
                })
            }
        }
    )*};
}

serde_uint!(u8, u16, u32, u64, usize);

macro_rules! serde_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::from(*self as i64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let raw = v
                    .as_i64()
                    .ok_or_else(|| DeError::custom(format!(
                        concat!("expected ", stringify!($t), ", got {:?}"), v)))?;
                <$t>::try_from(raw).map_err(|_| {
                    DeError::custom(format!(concat!(stringify!($t), " out of range: {}"), raw))
                })
            }
        }
    )*};
}

serde_int!(i8, i16, i32, i64, isize);

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::F32(*self)
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        if v.is_null() {
            return Ok(f32::NAN); // non-finite floats serialize as null
        }
        v.as_f64()
            .map(|f| f as f32)
            .ok_or_else(|| DeError::custom(format!("expected f32, got {v:?}")))
    }
}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        if v.is_null() {
            return Ok(f64::NAN);
        }
        v.as_f64().ok_or_else(|| DeError::custom(format!("expected f64, got {v:?}")))
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_str()
            .map(str::to_string)
            .ok_or_else(|| DeError::custom(format!("expected string, got {v:?}")))
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            None => Value::Null,
            Some(v) => v.to_value(),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        if v.is_null() {
            Ok(None)
        } else {
            Ok(Some(T::from_value(v)?))
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_array()
            .ok_or_else(|| DeError::custom(format!("expected array, got {v:?}")))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for VecDeque<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for VecDeque<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(Vec::<T>::from_value(v)?.into())
    }
}

impl<T: Serialize + Ord> Serialize for BTreeSet<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + Ord> Deserialize for BTreeSet<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(Vec::<T>::from_value(v)?.into_iter().collect())
    }
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        Value::Object(self.iter().map(|(k, v)| (k.clone(), v.to_value())).collect())
    }
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_object()
            .ok_or_else(|| DeError::custom(format!("expected object, got {v:?}")))?
            .iter()
            .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
            .collect()
    }
}

macro_rules! serde_tuple {
    ($(($($name:ident : $idx:tt),+)),+ $(,)?) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let items = v
                    .as_array()
                    .ok_or_else(|| DeError::custom(format!("expected tuple array, got {v:?}")))?;
                let expected = [$($idx),+].len();
                if items.len() != expected {
                    return Err(DeError::custom(format!(
                        "expected {expected}-tuple, got {} items", items.len()
                    )));
                }
                Ok(($($name::from_value(&items[$idx])?,)+))
            }
        }
    )+};
}

serde_tuple!(
    (A: 0),
    (A: 0, B: 1),
    (A: 0, B: 1, C: 2),
    (A: 0, B: 1, C: 2, D: 3),
    (A: 0, B: 1, C: 2, D: 3, E: 4),
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5),
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_roundtrip() {
        assert_eq!(u64::from_value(&42usize.to_value()).unwrap(), 42);
        assert_eq!(i32::from_value(&(-7i32).to_value()).unwrap(), -7);
        assert_eq!(f32::from_value(&0.25f32.to_value()).unwrap(), 0.25);
        assert_eq!(bool::from_value(&true.to_value()).unwrap(), true);
        assert_eq!(String::from_value(&"hi".to_string().to_value()).unwrap(), "hi");
        assert!(u8::from_value(&Value::UInt(300)).is_err());
        assert!(usize::from_value(&Value::String("x".into())).is_err());
    }

    #[test]
    fn containers_roundtrip() {
        let v = vec![1u32, 2, 3];
        assert_eq!(Vec::<u32>::from_value(&v.to_value()).unwrap(), v);
        let o: Option<u32> = None;
        assert!(Option::<u32>::from_value(&o.to_value()).unwrap().is_none());
        let s: BTreeSet<usize> = [3, 1, 2].into_iter().collect();
        assert_eq!(BTreeSet::<usize>::from_value(&s.to_value()).unwrap(), s);
        let t = (1usize, Some(2.5f32));
        assert_eq!(<(usize, Option<f32>)>::from_value(&t.to_value()).unwrap(), t);
        let d: VecDeque<u8> = vec![9, 8].into();
        assert_eq!(VecDeque::<u8>::from_value(&d.to_value()).unwrap(), d);
    }

    #[test]
    fn value_indexing() {
        let mut v = Value::Object(BTreeMap::new());
        v["a"] = Value::UInt(1);
        assert_eq!(v["a"], Value::UInt(1));
        assert_eq!(v["missing"], Value::Null);
        assert_eq!(v["missing"][3], Value::Null);
    }
}
