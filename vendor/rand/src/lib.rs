//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no network access and no vendored registry, so
//! this workspace ships a minimal, API-compatible subset of `rand` 0.8: the
//! [`Rng`]/[`RngCore`]/[`SeedableRng`] traits, a deterministic
//! xoshiro256**-based [`rngs::StdRng`], uniform range sampling and slice
//! shuffling. Every stream is a pure function of its seed, which is exactly
//! the property the Fed-MS simulator depends on (bit-reproducible runs).
//!
//! Only the APIs the workspace actually exercises are provided; the numeric
//! streams differ from upstream `rand`, which is fine because nothing in the
//! repository depends on upstream's exact values — only on determinism.

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let word = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&word[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types that can be sampled uniformly from an RNG's "standard"
/// distribution (`rng.gen()`): floats in `[0, 1)`, full-range integers,
/// fair booleans.
pub trait StandardSample {
    /// Draws one value from `rng`.
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits → uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl StandardSample for u64 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl StandardSample for u32 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl StandardSample for bool {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges that can be sampled uniformly (`rng.gen_range(range)`).
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Unbiased integer in `[0, bound)` by rejection sampling.
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    let zone = u64::MAX - (u64::MAX - bound + 1) % bound;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return v % bound;
        }
    }
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + uniform_below(rng, span) as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (lo as i128 + uniform_below(rng, span + 1) as i128) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let u = <$t as StandardSample>::standard_sample(rng);
                self.start + (self.end - self.start) * u
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let u = <$t as StandardSample>::standard_sample(rng);
                lo + (hi - lo) * u
            }
        }
    )*};
}

impl_float_range!(f32, f64);

/// The user-facing random-value API, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value from the standard distribution of `T`.
    fn gen<T: StandardSample>(&mut self) -> T {
        T::standard_sample(self)
    }

    /// Draws a value uniformly from `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0 ≤ p ≤ 1`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p={p} out of range");
        f64::standard_sample(self) < p
    }

    /// Fills `dest` with values from the standard distribution.
    fn fill<T: StandardSample>(&mut self, dest: &mut [T]) {
        for v in dest.iter_mut() {
            *v = T::standard_sample(self);
        }
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// RNGs constructible from a seed.
pub trait SeedableRng: Sized {
    /// The seed type (byte array).
    type Seed: AsMut<[u8]> + Default;

    /// Builds the RNG from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the RNG from a `u64` via SplitMix64 expansion.
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = state;
        for chunk in seed.as_mut().chunks_mut(8) {
            let word = splitmix64(&mut sm).to_le_bytes();
            chunk.copy_from_slice(&word[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Concrete RNG implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256** generator (the stand-in for upstream's
    /// ChaCha12-based `StdRng`).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, word) in s.iter_mut().enumerate() {
                let mut bytes = [0u8; 8];
                bytes.copy_from_slice(&seed[i * 8..(i + 1) * 8]);
                *word = u64::from_le_bytes(bytes);
            }
            // A xoshiro state of all zeros is a fixed point; nudge it.
            if s == [0; 4] {
                s = [0x9E37_79B9_7F4A_7C15, 1, 2, 3];
            }
            StdRng { s }
        }
    }

    /// Alias: the "small" generator is the same deterministic core.
    pub type SmallRng = StdRng;
}

/// Sequence-related helpers (`SliceRandom`).
pub mod seq {
    use super::{Rng, RngCore};

    /// Shuffling and random selection on slices.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Fisher–Yates shuffle, driven by `rng`.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Uniformly random element, `None` if empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

/// Upstream-compatible module path for distribution traits.
pub mod distributions {
    pub use super::StandardSample;
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn unit_interval_samples() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            let y: f32 = rng.gen();
            assert!((0.0..1.0).contains(&y));
        }
    }

    #[test]
    fn range_sampling_in_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..1000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&w));
            let f = rng.gen_range(-2.0f32..2.0);
            assert!((-2.0..2.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(3);
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn shuffle_is_permutation() {
        use super::seq::SliceRandom;
        let mut rng = StdRng::seed_from_u64(4);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }
}
