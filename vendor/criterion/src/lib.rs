//! Offline stand-in for `criterion`.
//!
//! Implements the bench-definition surface the workspace's benches use
//! (`Criterion`, `benchmark_group`, `bench_function`, `bench_with_input`,
//! `BenchmarkId`, `criterion_group!`, `criterion_main!`) with a simple
//! wall-clock timer: each benchmark runs `sample_size` timed iterations
//! after a short warm-up and prints min/mean per-iteration times. There is
//! no statistical analysis, HTML report, or outlier rejection — enough to
//! keep `cargo bench` useful for relative comparisons offline.

use std::time::Instant;

/// Re-export so benches can use `criterion::black_box`.
pub use std::hint::black_box;

/// A benchmark label, optionally `function_name/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// Builds an id rendered as `"{function}/{parameter}"`.
    pub fn new(function: impl std::fmt::Display, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId { label: format!("{function}/{parameter}") }
    }

    /// Builds an id from a bare parameter.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId { label: parameter.to_string() }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { label: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { label: s }
    }
}

/// The per-iteration timing handle passed to bench closures.
pub struct Bencher {
    /// (elapsed nanoseconds, iterations) accumulated by `iter`.
    samples: Vec<u128>,
    iters: usize,
}

impl Bencher {
    /// Times `f`, running it once per sample after a warm-up.
    pub fn iter<R>(&mut self, mut f: impl FnMut() -> R) {
        for _ in 0..2 {
            black_box(f()); // warm-up
        }
        for _ in 0..self.iters {
            let start = Instant::now();
            black_box(f());
            self.samples.push(start.elapsed().as_nanos());
        }
    }
}

fn human(ns: u128) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.3} s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.3} ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.3} µs", ns as f64 / 1e3)
    } else {
        format!("{ns} ns")
    }
}

fn run_one(label: &str, sample_size: usize, f: &mut dyn FnMut(&mut Bencher)) {
    let mut bencher = Bencher { samples: Vec::new(), iters: sample_size.max(1) };
    f(&mut bencher);
    if bencher.samples.is_empty() {
        println!("{label:<48} (no samples)");
        return;
    }
    let min = *bencher.samples.iter().min().expect("non-empty");
    let sum: u128 = bencher.samples.iter().sum();
    let mean = sum / bencher.samples.len() as u128;
    println!(
        "{label:<48} min {:>12}   mean {:>12}   ({} samples)",
        human(min),
        human(mean),
        bencher.samples.len()
    );
}

/// The top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {
    _priv: (),
}

impl Criterion {
    /// Runs a standalone benchmark.
    pub fn bench_function(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        run_one(&id.into().label, 10, &mut f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("group {name}");
        BenchmarkGroup { _parent: self, name, sample_size: 10 }
    }
}

/// A group of benchmarks sharing a name prefix and sample size.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed iterations per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id.into().label);
        run_one(&label, self.sample_size, &mut f);
        self
    }

    /// Runs one benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id.into().label);
        run_one(&label, self.sample_size, &mut |b| f(b, input));
        self
    }

    /// Ends the group (no-op; parity with upstream).
    pub fn finish(self) {}
}

/// Declares a group function running each listed benchmark.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
