//! Offline stand-in for `serde_json`, built on the vendored `serde` stub's
//! [`Value`] tree: a recursive-descent JSON parser, compact and pretty
//! printers, and the `to_string`/`from_str`/`to_value`/`from_value` entry
//! points the workspace uses.
//!
//! Numeric fidelity notes: integers are parsed through `u64`/`i64` (never
//! `f64`), so 64-bit seeds survive a round trip bit-exactly; `f32` payloads
//! are printed with Rust's shortest-roundtrip `Display`, which re-reads to
//! the identical `f32` after the parse-to-`f64`-then-narrow path. Non-finite
//! floats print as `null`, matching upstream `serde_json`.

pub use serde::Value;
use serde::{Deserialize, Serialize};

/// A JSON object map (alias of the `Value` tree's object representation).
pub type Map = std::collections::BTreeMap<String, Value>;

/// JSON (de)serialization error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for Error {}

/// Serializes `value` to compact JSON text.
///
/// # Errors
///
/// Never fails for the value model used here; the `Result` mirrors the
/// upstream signature.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serializes `value` to pretty-printed JSON text (2-space indent).
///
/// # Errors
///
/// Never fails for the value model used here.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Converts any serializable value into a [`Value`] tree.
///
/// # Errors
///
/// Never fails for the value model used here.
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Result<Value, Error> {
    Ok(value.to_value())
}

/// Builds a `T` out of a [`Value`] tree.
///
/// # Errors
///
/// Fails when the tree's shape does not match `T`.
pub fn from_value<T: Deserialize>(value: Value) -> Result<T, Error> {
    T::from_value(&value).map_err(|e| Error(e.to_string()))
}

/// Parses JSON text into a `T`.
///
/// # Errors
///
/// Fails on malformed JSON or when the document's shape does not match `T`.
pub fn from_str<T: Deserialize>(text: &str) -> Result<T, Error> {
    let mut p = Parser { bytes: text.as_bytes(), pos: 0 };
    p.skip_ws();
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error(format!("trailing characters at byte {}", p.pos)));
    }
    T::from_value(&v).map_err(|e| Error(e.to_string()))
}

/// Builds a [`Value`] from a JSON literal.
///
/// Unlike upstream `serde_json::json!`, the literal must be pure JSON —
/// embedded Rust expressions are not supported (the token stream is
/// stringified and parsed).
#[macro_export]
macro_rules! json {
    ($($tt:tt)+) => {
        $crate::from_str::<$crate::Value>(stringify!($($tt)+))
            .expect("json! literal must be valid JSON")
    };
}

// ---------------------------------------------------------------------------
// Printing
// ---------------------------------------------------------------------------

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn push_indent(out: &mut String, indent: Option<usize>, level: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * level {
            out.push(' ');
        }
    }
}

fn write_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        out.push_str(&format!("{v}"));
    } else {
        out.push_str("null"); // upstream serde_json also emits null here
    }
}

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, level: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(n) => out.push_str(&format!("{n}")),
        Value::UInt(n) => out.push_str(&format!("{n}")),
        Value::F32(f) => {
            if f.is_finite() {
                out.push_str(&format!("{f}"));
            } else {
                out.push_str("null");
            }
        }
        Value::Float(f) => write_f64(out, *f),
        Value::String(s) => write_escaped(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                push_indent(out, indent, level + 1);
                write_value(out, item, indent, level + 1);
            }
            push_indent(out, indent, level);
            out.push(']');
        }
        Value::Object(map) => {
            if map.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, item)) in map.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                push_indent(out, indent, level + 1);
                write_escaped(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, level + 1);
            }
            push_indent(out, indent, level);
            out.push('}');
        }
    }
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error(format!(
                "expected `{}` at byte {}, found {:?}",
                b as char,
                self.pos,
                self.peek().map(|c| c as char)
            )))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') if self.eat_keyword("null") => Ok(Value::Null),
            Some(b't') if self.eat_keyword("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Value::Bool(false)),
            Some(b'"') => Ok(Value::String(self.parse_string()?)),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b'-') | Some(b'0'..=b'9') => self.parse_number(),
            other => Err(Error(format!(
                "unexpected {:?} at byte {}",
                other.map(|c| c as char),
                self.pos
            ))),
        }
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                other => {
                    return Err(Error(format!(
                        "expected `,` or `]` at byte {}, found {:?}",
                        self.pos,
                        other.map(|c| c as char)
                    )))
                }
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut map = Map::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.parse_value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(map));
                }
                other => {
                    return Err(Error(format!(
                        "expected `,` or `}}` at byte {}, found {:?}",
                        self.pos,
                        other.map(|c| c as char)
                    )))
                }
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            while let Some(b) = self.peek() {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| Error("invalid UTF-8 in string".into()))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| Error("unterminated escape".into()))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b't' => out.push('\t'),
                        b'r' => out.push('\r'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000C}'),
                        b'u' => {
                            let hi = self.parse_hex4()?;
                            let code = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: expect \uXXXX low half.
                                if !(self.eat_keyword("\\u")) {
                                    return Err(Error("lone high surrogate".into()));
                                }
                                let lo = self.parse_hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(Error("invalid low surrogate".into()));
                                }
                                0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                            } else {
                                hi
                            };
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error("invalid \\u escape".into()))?,
                            );
                        }
                        other => {
                            return Err(Error(format!("invalid escape `\\{}`", other as char)))
                        }
                    }
                }
                _ => return Err(Error("unterminated string".into())),
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32, Error> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(Error("truncated \\u escape".into()));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| Error("invalid \\u escape".into()))?;
        self.pos = end;
        u32::from_str_radix(hex, 16).map_err(|_| Error("invalid \\u escape".into()))
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e') | Some(b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text =
            std::str::from_utf8(&self.bytes[start..self.pos]).expect("number bytes are ASCII");
        if !is_float {
            // Integer path keeps full 64-bit precision (seeds!).
            if let Some(stripped) = text.strip_prefix('-') {
                if let Ok(v) = stripped.parse::<u64>() {
                    if let Ok(neg) = i64::try_from(v) {
                        return Ok(Value::Int(-neg));
                    }
                }
            } else if let Ok(v) = text.parse::<u64>() {
                return Ok(Value::UInt(v));
            }
        }
        text.parse::<f64>().map(Value::Float).map_err(|_| Error(format!("invalid number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_basic_document() {
        let text = r#"{"a": [1, -2, 3.5], "b": {"c": true, "d": null}, "e": "hi\n"}"#;
        let v: Value = from_str(text).unwrap();
        assert_eq!(v["a"][1], Value::Int(-2));
        assert_eq!(v["b"]["c"], Value::Bool(true));
        assert!(v["b"]["d"].is_null());
        assert_eq!(v["e"].as_str(), Some("hi\n"));
        let reprinted: Value = from_str(&to_string(&v).unwrap()).unwrap();
        assert_eq!(reprinted, v);
        let pretty: Value = from_str(&to_string_pretty(&v).unwrap()).unwrap();
        assert_eq!(pretty, v);
    }

    #[test]
    fn u64_seeds_survive() {
        let seed = u64::MAX - 3;
        let text = to_string(&seed).unwrap();
        assert_eq!(from_str::<u64>(&text).unwrap(), seed);
    }

    #[test]
    fn f32_shortest_roundtrip() {
        for &x in &[0.1f32, 1.0 / 3.0, -2.5e-4, 1e9, f32::MIN_POSITIVE] {
            let text = to_string(&x).unwrap();
            assert_eq!(from_str::<f32>(&text).unwrap(), x, "text {text}");
        }
    }

    #[test]
    fn nonfinite_floats_are_null() {
        assert_eq!(to_string(&f64::INFINITY).unwrap(), "null");
        assert!(from_str::<f32>("null").unwrap().is_nan());
    }

    #[test]
    fn json_macro_builds_nested_values() {
        let v = json!({"Mlp": {"widths": [192, 8, 10]}});
        assert_eq!(v["Mlp"]["widths"][2], Value::UInt(10));
        let arr = json!([1, 2, 3]);
        assert_eq!(arr.as_array().unwrap().len(), 3);
    }

    #[test]
    fn string_escapes() {
        let v: Value = from_str(r#""a\"b\\cAé😀""#).unwrap();
        assert_eq!(v.as_str(), Some("a\"b\\cAé😀"));
        let back = to_string(&v).unwrap();
        let v2: Value = from_str(&back).unwrap();
        assert_eq!(v, v2);
    }

    #[test]
    fn rejects_malformed() {
        assert!(from_str::<Value>("{\"a\": }").is_err());
        assert!(from_str::<Value>("[1, 2").is_err());
        assert!(from_str::<Value>("12 34").is_err());
    }
}
