//! Offline `#[derive(Serialize)]` / `#[derive(Deserialize)]` for the
//! vendored `serde` stub.
//!
//! Parses the item's token stream directly (no `syn`/`quote`, which are not
//! available offline) and emits impls of the stub's value-tree traits
//! (`Serialize::to_value` / `Deserialize::from_value`). Supported shapes:
//! named-field structs, tuple/newtype structs, unit structs, and enums with
//! unit, newtype, tuple and struct variants — serialized with serde's
//! externally-tagged enum representation so the JSON matches upstream.
//!
//! Field attribute support: `#[serde(default)]`. Fields whose type is
//! syntactically `Option<..>` deserialize to `None` when the key is absent.
//! Generic types and other `#[serde(..)]` attributes produce a
//! `compile_error!`.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derives the stub `Serialize` trait.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, Mode::Serialize)
}

/// Derives the stub `Deserialize` trait.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, Mode::Deserialize)
}

#[derive(Clone, Copy, PartialEq)]
enum Mode {
    Serialize,
    Deserialize,
}

struct Field {
    name: String,
    has_default: bool,
    is_option: bool,
}

enum Fields {
    Named(Vec<Field>),
    Tuple(usize),
    Unit,
}

struct Variant {
    name: String,
    fields: Fields,
}

enum Ast {
    Struct { name: String, fields: Fields },
    Enum { name: String, variants: Vec<Variant> },
}

fn expand(input: TokenStream, mode: Mode) -> TokenStream {
    let code = match parse_item(input) {
        Ok(ast) => match mode {
            Mode::Serialize => gen_serialize(&ast),
            Mode::Deserialize => gen_deserialize(&ast),
        },
        Err(msg) => format!("compile_error!({msg:?});"),
    };
    code.parse().expect("serde_derive stub generated invalid Rust")
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

/// Scans one attribute (`#` already seen, `toks[*i]` is the bracket group).
/// Returns `Ok(true)` if it was exactly `#[serde(default)]`.
fn scan_attr(toks: &[TokenTree], i: &mut usize) -> Result<bool, String> {
    let TokenTree::Group(g) = &toks[*i] else {
        return Err("expected attribute brackets after `#`".into());
    };
    *i += 1;
    let inner: Vec<TokenTree> = g.stream().into_iter().collect();
    let is_serde =
        matches!(&inner.first(), Some(TokenTree::Ident(id)) if id.to_string() == "serde");
    if !is_serde {
        return Ok(false); // doc comments and other attributes: ignore
    }
    if inner.len() == 2 {
        if let TokenTree::Group(args) = &inner[1] {
            let args: Vec<TokenTree> = args.stream().into_iter().collect();
            if args.len() == 1
                && matches!(&args[0], TokenTree::Ident(id) if id.to_string() == "default")
            {
                return Ok(true);
            }
        }
    }
    Err(format!("vendored serde_derive only supports #[serde(default)], got #[{}]", g.stream()))
}

/// Skips leading attributes, returning whether any was `#[serde(default)]`.
fn skip_attrs(toks: &[TokenTree], i: &mut usize) -> Result<bool, String> {
    let mut has_default = false;
    while *i + 1 < toks.len() {
        let TokenTree::Punct(p) = &toks[*i] else { break };
        if p.as_char() != '#' {
            break;
        }
        *i += 1;
        has_default |= scan_attr(toks, i)?;
    }
    Ok(has_default)
}

/// Skips `pub` / `pub(crate)` / `pub(in ..)` visibility.
fn skip_vis(toks: &[TokenTree], i: &mut usize) {
    if matches!(&toks.get(*i), Some(TokenTree::Ident(id)) if id.to_string() == "pub") {
        *i += 1;
        if matches!(&toks.get(*i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
        {
            *i += 1;
        }
    }
}

fn parse_item(input: TokenStream) -> Result<Ast, String> {
    let toks: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    skip_attrs(&toks, &mut i)?;
    skip_vis(&toks, &mut i);

    let kind = match &toks.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected `struct` or `enum`, got {other:?}")),
    };
    i += 1;
    let name = match &toks.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected type name, got {other:?}")),
    };
    i += 1;
    if matches!(&toks.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        return Err(format!("vendored serde_derive does not support generic types ({name})"));
    }

    match kind.as_str() {
        "struct" => {
            let fields = match &toks.get(i) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    Fields::Named(parse_named_fields(g.stream())?)
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    Fields::Tuple(count_tuple_fields(g.stream())?)
                }
                Some(TokenTree::Punct(p)) if p.as_char() == ';' => Fields::Unit,
                other => return Err(format!("unsupported struct body: {other:?}")),
            };
            Ok(Ast::Struct { name, fields })
        }
        "enum" => {
            let Some(TokenTree::Group(g)) = &toks.get(i) else {
                return Err("expected enum body".into());
            };
            Ok(Ast::Enum { name, variants: parse_variants(g.stream())? })
        }
        other => Err(format!("cannot derive for `{other}` items")),
    }
}

fn parse_named_fields(body: TokenStream) -> Result<Vec<Field>, String> {
    let toks: Vec<TokenTree> = body.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        let has_default = skip_attrs(&toks, &mut i)?;
        skip_vis(&toks, &mut i);
        let name = match &toks.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            other => return Err(format!("expected field name, got {other:?}")),
        };
        i += 1;
        if !matches!(&toks.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ':') {
            return Err(format!("expected `:` after field `{name}`"));
        }
        i += 1;
        // Consume the type: everything up to a comma at angle-bracket depth 0.
        let mut ty = String::new();
        let mut depth = 0i32;
        while i < toks.len() {
            if let TokenTree::Punct(p) = &toks[i] {
                match p.as_char() {
                    ',' if depth == 0 => break,
                    '<' => depth += 1,
                    '>' => depth -= 1,
                    _ => {}
                }
            }
            ty.push_str(&toks[i].to_string());
            i += 1;
        }
        i += 1; // past the comma (or off the end)
        let ty = ty.replace(' ', "");
        let is_option = ty.starts_with("Option<")
            || ty.starts_with("std::option::Option<")
            || ty.starts_with("core::option::Option<")
            || ty.starts_with("::std::option::Option<")
            || ty.starts_with("::core::option::Option<");
        fields.push(Field { name, has_default, is_option });
    }
    Ok(fields)
}

/// Counts the fields of a tuple struct / tuple variant body.
fn count_tuple_fields(body: TokenStream) -> Result<usize, String> {
    let toks: Vec<TokenTree> = body.into_iter().collect();
    let mut count = 0;
    let mut depth = 0i32;
    let mut in_field = false;
    let mut i = 0;
    while i < toks.len() {
        // Field-level attributes/visibility only appear at element starts.
        if !in_field {
            skip_attrs(&toks, &mut i)?;
            skip_vis(&toks, &mut i);
            if i >= toks.len() {
                break;
            }
        }
        if let TokenTree::Punct(p) = &toks[i] {
            match p.as_char() {
                ',' if depth == 0 => {
                    in_field = false;
                    i += 1;
                    continue;
                }
                '<' => depth += 1,
                '>' => depth -= 1,
                _ => {}
            }
        }
        if !in_field {
            in_field = true;
            count += 1;
        }
        i += 1;
    }
    Ok(count)
}

fn parse_variants(body: TokenStream) -> Result<Vec<Variant>, String> {
    let toks: Vec<TokenTree> = body.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        skip_attrs(&toks, &mut i)?;
        let name = match &toks.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            other => return Err(format!("expected variant name, got {other:?}")),
        };
        i += 1;
        let fields = match &toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                Fields::Tuple(count_tuple_fields(g.stream())?)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                Fields::Named(parse_named_fields(g.stream())?)
            }
            _ => Fields::Unit,
        };
        if matches!(&toks.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '=') {
            return Err(format!("discriminants are not supported (variant {name})"));
        }
        if matches!(&toks.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            i += 1;
        }
        variants.push(Variant { name, fields });
    }
    Ok(variants)
}

// ---------------------------------------------------------------------------
// Code generation
// ---------------------------------------------------------------------------

/// Emits statements that build a `BTreeMap<String, Value>` named `map_var`
/// from named fields read through `access` (e.g. `&self.` or `` for match
/// bindings).
fn ser_named_fields(map_var: &str, fields: &[Field], mk_expr: impl Fn(&str) -> String) -> String {
    let mut out = format!("let mut {map_var} = ::std::collections::BTreeMap::new();\n");
    for f in fields {
        let expr = mk_expr(&f.name);
        out.push_str(&format!(
            "{map_var}.insert(::std::string::String::from({:?}), \
             ::serde::Serialize::to_value({expr}));\n",
            f.name
        ));
    }
    out
}

fn gen_serialize(ast: &Ast) -> String {
    match ast {
        Ast::Struct { name, fields } => {
            let body = match fields {
                Fields::Named(fs) => {
                    let mut b = ser_named_fields("__map", fs, |f| format!("&self.{f}"));
                    b.push_str("::serde::Value::Object(__map)");
                    b
                }
                Fields::Tuple(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
                Fields::Tuple(n) => {
                    let items: Vec<String> = (0..*n)
                        .map(|k| format!("::serde::Serialize::to_value(&self.{k})"))
                        .collect();
                    format!("::serde::Value::Array(vec![{}])", items.join(", "))
                }
                Fields::Unit => "::serde::Value::Null".to_string(),
            };
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                 fn to_value(&self) -> ::serde::Value {{\n{body}\n}}\n}}\n"
            )
        }
        Ast::Enum { name, variants } => {
            let mut arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.fields {
                    Fields::Unit => arms.push_str(&format!(
                        "{name}::{vn} => \
                         ::serde::Value::String(::std::string::String::from({vn:?})),\n"
                    )),
                    Fields::Tuple(1) => arms.push_str(&format!(
                        "{name}::{vn}(__f0) => {{\n\
                         let mut __m = ::std::collections::BTreeMap::new();\n\
                         __m.insert(::std::string::String::from({vn:?}), \
                         ::serde::Serialize::to_value(__f0));\n\
                         ::serde::Value::Object(__m)\n}}\n"
                    )),
                    Fields::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|k| format!("__f{k}")).collect();
                        let items: Vec<String> = binds
                            .iter()
                            .map(|b| format!("::serde::Serialize::to_value({b})"))
                            .collect();
                        arms.push_str(&format!(
                            "{name}::{vn}({}) => {{\n\
                             let mut __m = ::std::collections::BTreeMap::new();\n\
                             __m.insert(::std::string::String::from({vn:?}), \
                             ::serde::Value::Array(vec![{}]));\n\
                             ::serde::Value::Object(__m)\n}}\n",
                            binds.join(", "),
                            items.join(", ")
                        ));
                    }
                    Fields::Named(fs) => {
                        let binds: Vec<String> = fs.iter().map(|f| f.name.clone()).collect();
                        let inner = ser_named_fields("__inner", fs, |f| f.to_string());
                        arms.push_str(&format!(
                            "{name}::{vn} {{ {} }} => {{\n{inner}\
                             let mut __m = ::std::collections::BTreeMap::new();\n\
                             __m.insert(::std::string::String::from({vn:?}), \
                             ::serde::Value::Object(__inner));\n\
                             ::serde::Value::Object(__m)\n}}\n",
                            binds.join(", ")
                        ));
                    }
                }
            }
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                 fn to_value(&self) -> ::serde::Value {{\nmatch self {{\n{arms}}}\n}}\n}}\n"
            )
        }
    }
}

/// Emits a struct-literal body (`field: expr, ...`) that reads named fields
/// out of a map expression `obj_var`.
fn de_named_fields(type_label: &str, obj_var: &str, fields: &[Field]) -> String {
    let mut out = String::new();
    for f in fields {
        let missing = if f.has_default {
            "::std::default::Default::default()".to_string()
        } else if f.is_option {
            "::std::option::Option::None".to_string()
        } else {
            format!(
                "return ::std::result::Result::Err(::serde::DeError::custom({:?}))",
                format!("{type_label}: missing field `{}`", f.name)
            )
        };
        out.push_str(&format!(
            "{}: match {obj_var}.get({:?}) {{\n\
             ::std::option::Option::Some(__fv) => ::serde::Deserialize::from_value(__fv)?,\n\
             ::std::option::Option::None => {missing},\n}},\n",
            f.name, f.name
        ));
    }
    out
}

/// Emits an expression deserializing a tuple body of `n` fields from array
/// expression `arr_var` into constructor `ctor`.
fn de_tuple(type_label: &str, ctor: &str, arr_var: &str, n: usize) -> String {
    let items: Vec<String> =
        (0..n).map(|k| format!("::serde::Deserialize::from_value(&{arr_var}[{k}])?")).collect();
    format!(
        "{{\nif {arr_var}.len() != {n} {{\n\
         return ::std::result::Result::Err(::serde::DeError::custom(format!(\n\
         \"{type_label}: expected {n} elements, got {{}}\", {arr_var}.len())));\n}}\n\
         ::std::result::Result::Ok({ctor}({}))\n}}",
        items.join(", ")
    )
}

fn gen_deserialize(ast: &Ast) -> String {
    let body = match ast {
        Ast::Struct { name, fields } => match fields {
            Fields::Named(fs) => format!(
                "let __obj = __v.as_object().ok_or_else(|| \
                 ::serde::DeError::custom(format!(\"{name}: expected object, got {{:?}}\", __v)))?;\n\
                 ::std::result::Result::Ok({name} {{\n{}}})",
                de_named_fields(name, "__obj", fs)
            ),
            Fields::Tuple(1) => {
                format!("::std::result::Result::Ok({name}(::serde::Deserialize::from_value(__v)?))")
            }
            Fields::Tuple(n) => format!(
                "let __arr = __v.as_array().ok_or_else(|| \
                 ::serde::DeError::custom(format!(\"{name}: expected array, got {{:?}}\", __v)))?;\n\
                 {}",
                de_tuple(name, name, "__arr", *n)
            ),
            Fields::Unit => format!("::std::result::Result::Ok({name})"),
        },
        Ast::Enum { name, variants } => {
            let unit: Vec<&Variant> =
                variants.iter().filter(|v| matches!(v.fields, Fields::Unit)).collect();
            let data: Vec<&Variant> =
                variants.iter().filter(|v| !matches!(v.fields, Fields::Unit)).collect();

            let mut body = String::new();
            if !unit.is_empty() {
                let mut arms = String::new();
                for v in &unit {
                    arms.push_str(&format!(
                        "{:?} => ::std::result::Result::Ok({name}::{}),\n",
                        v.name, v.name
                    ));
                }
                body.push_str(&format!(
                    "if let ::std::option::Option::Some(__s) = __v.as_str() {{\n\
                     return match __s {{\n{arms}\
                     __other => ::std::result::Result::Err(::serde::DeError::custom(\
                     format!(\"{name}: unknown variant `{{}}`\", __other))),\n}};\n}}\n"
                ));
            }
            if data.is_empty() {
                body.push_str(&format!(
                    "::std::result::Result::Err(::serde::DeError::custom(\
                     format!(\"{name}: expected variant string, got {{:?}}\", __v)))"
                ));
            } else {
                let mut arms = String::new();
                for v in &data {
                    let vn = &v.name;
                    let label = format!("{name}::{vn}");
                    match &v.fields {
                        Fields::Tuple(1) => arms.push_str(&format!(
                            "{vn:?} => ::std::result::Result::Ok(\
                             {name}::{vn}(::serde::Deserialize::from_value(__inner)?)),\n"
                        )),
                        Fields::Tuple(n) => arms.push_str(&format!(
                            "{vn:?} => {{\nlet __arr = __inner.as_array().ok_or_else(|| \
                             ::serde::DeError::custom(\"{label}: expected array\"))?;\n{}\n}}\n",
                            de_tuple(&label, &format!("{name}::{vn}"), "__arr", *n)
                        )),
                        Fields::Named(fs) => arms.push_str(&format!(
                            "{vn:?} => {{\nlet __o = __inner.as_object().ok_or_else(|| \
                             ::serde::DeError::custom(\"{label}: expected object\"))?;\n\
                             ::std::result::Result::Ok({name}::{vn} {{\n{}}})\n}}\n",
                            de_named_fields(&label, "__o", fs)
                        )),
                        Fields::Unit => unreachable!(),
                    }
                }
                body.push_str(&format!(
                    "let __obj = __v.as_object().ok_or_else(|| \
                     ::serde::DeError::custom(format!(\"{name}: expected variant, got {{:?}}\", __v)))?;\n\
                     if __obj.len() != 1 {{\n\
                     return ::std::result::Result::Err(::serde::DeError::custom(\
                     \"{name}: expected single-key variant object\"));\n}}\n\
                     let (__tag, __inner) = __obj.iter().next().expect(\"len checked\");\n\
                     match __tag.as_str() {{\n{arms}\
                     __other => ::std::result::Result::Err(::serde::DeError::custom(\
                     format!(\"{name}: unknown variant `{{}}`\", __other))),\n}}\n"
                ));
            }
            body
        }
    };
    let name = match ast {
        Ast::Struct { name, .. } | Ast::Enum { name, .. } => name,
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
         fn from_value(__v: &::serde::Value) -> \
         ::std::result::Result<Self, ::serde::DeError> {{\n{body}\n}}\n}}\n"
    )
}
