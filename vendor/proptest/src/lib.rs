//! Offline stand-in for `proptest`.
//!
//! Provides the subset this workspace's property tests use: the
//! [`Strategy`] trait with `prop_map` / `prop_flat_map` / `prop_filter`,
//! numeric ranges and strategy tuples as strategies,
//! [`collection::vec`], and the `proptest!` / `prop_assert!` /
//! `prop_assert_eq!` / `prop_assume!` macros.
//!
//! Differences from upstream: no shrinking (a failing case reports its
//! inputs but is not minimized), and case generation is deterministic per
//! test name (seeded from a hash of the test's name) so failures reproduce
//! without a regressions file. The number of cases per test defaults to 64
//! and can be overridden with the `PROPTEST_CASES` environment variable.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Outcome of one generated test case.
#[derive(Debug)]
pub enum TestCaseError {
    /// An assertion failed; the message explains what.
    Fail(String),
    /// `prop_assume!` rejected the inputs; the case is retried.
    Reject,
}

/// The RNG handed to strategies.
pub type TestRng = StdRng;

/// A recipe for generating values of `Self::Value`.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value; `None` means the draw was rejected (filtered).
    fn generate(&self, rng: &mut TestRng) -> Option<Self::Value>;

    /// Maps generated values through `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Builds a second-stage strategy from each generated value.
    fn prop_flat_map<S2: Strategy, F: Fn(Self::Value) -> S2>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }

    /// Rejects generated values failing `pred` (the reason is informational).
    fn prop_filter<F: Fn(&Self::Value) -> bool>(
        self,
        reason: impl Into<String>,
        pred: F,
    ) -> Filter<Self, F>
    where
        Self: Sized,
    {
        Filter { inner: self, _reason: reason.into(), pred }
    }

    /// Boxes the strategy behind one fixed type (parity with upstream).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// A heap-allocated, type-erased strategy.
pub struct BoxedStrategy<T>(Box<dyn DynStrategy<T>>);

trait DynStrategy<T> {
    fn dyn_generate(&self, rng: &mut TestRng) -> Option<T>;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn dyn_generate(&self, rng: &mut TestRng) -> Option<S::Value> {
        self.generate(rng)
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> Option<T> {
        self.0.dyn_generate(rng)
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> Option<U> {
        self.inner.generate(rng).map(&self.f)
    }
}

/// Strategy returned by [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;

    fn generate(&self, rng: &mut TestRng) -> Option<S2::Value> {
        let first = self.inner.generate(rng)?;
        (self.f)(first).generate(rng)
    }
}

/// Strategy returned by [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    _reason: String,
    pred: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
        self.inner.generate(rng).filter(|v| (self.pred)(v))
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> Option<T> {
        Some(self.0.clone())
    }
}

impl<T: Clone> Strategy for core::ops::Range<T>
where
    core::ops::Range<T>: rand::SampleRange<T>,
{
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> Option<T> {
        Some(rng.gen_range(self.clone()))
    }
}

impl<T: Clone> Strategy for core::ops::RangeInclusive<T>
where
    core::ops::RangeInclusive<T>: rand::SampleRange<T>,
{
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> Option<T> {
        Some(rng.gen_range(self.clone()))
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($s:ident : $idx:tt),+)),+ $(,)?) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Option<Self::Value> {
                Some(($(self.$idx.generate(rng)?,)+))
            }
        }
    )+};
}

impl_tuple_strategy!(
    (A: 0),
    (A: 0, B: 1),
    (A: 0, B: 1, C: 2),
    (A: 0, B: 1, C: 2, D: 3),
    (A: 0, B: 1, C: 2, D: 3, E: 4),
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5),
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6),
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6, H: 7),
);

/// Collection strategies (`proptest::collection::vec`).
pub mod collection {
    use super::{Strategy, TestRng};
    use rand::Rng;

    /// Length specification for [`vec`]: a fixed size or a range of sizes.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        min: usize,
        max_inclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { min: n, max_inclusive: n }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange { min: r.start, max_inclusive: r.end - 1 }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty size range");
            SizeRange { min: *r.start(), max_inclusive: *r.end() }
        }
    }

    /// Strategy producing `Vec`s of values from an element strategy.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generates vectors whose length is drawn from `size` and whose
    /// elements are drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Option<Vec<S::Value>> {
            let len = rng.gen_range(self.size.min..=self.size.max_inclusive);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// The glob-import module mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, BoxedStrategy, Just,
        Strategy, TestCaseError,
    };
}

/// FNV-1a hash of the test name — the per-test base seed.
fn name_seed(name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Drives one property test: generates cases, runs the body, panics with
/// the offending inputs on failure. Called by the `proptest!` macro.
///
/// # Panics
///
/// Panics when the body fails for some input, or when too many consecutive
/// draws are rejected (over-constrained filters/assumptions).
pub fn run_cases<S>(
    test_name: &str,
    strategy: &S,
    mut body: impl FnMut(S::Value) -> Result<(), TestCaseError>,
) where
    S: Strategy,
    S::Value: std::fmt::Debug + Clone,
{
    let cases: u64 =
        std::env::var("PROPTEST_CASES").ok().and_then(|v| v.parse().ok()).unwrap_or(64);
    let base = name_seed(test_name);
    let mut passed = 0u64;
    let mut attempts = 0u64;
    let max_attempts = cases.saturating_mul(64).max(1024);
    while passed < cases {
        assert!(
            attempts < max_attempts,
            "proptest `{test_name}`: too many rejected cases ({attempts} attempts for \
             {passed}/{cases} passes) — filters/assumptions are too strict"
        );
        let mut rng =
            StdRng::seed_from_u64(base.wrapping_add(attempts.wrapping_mul(0x9E37_79B9_7F4A_7C15)));
        attempts += 1;
        let Some(input) = strategy.generate(&mut rng) else {
            continue; // filtered out
        };
        match body(input.clone()) {
            Ok(()) => passed += 1,
            Err(TestCaseError::Reject) => continue,
            Err(TestCaseError::Fail(msg)) => {
                panic!("proptest `{test_name}` failed at case {passed}: {msg}\ninput: {input:#?}")
            }
        }
    }
}

/// Declares property tests: `fn name(arg in strategy, ...) { body }`.
#[macro_export]
macro_rules! proptest {
    ($(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
    )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __strategy = ($($strat,)+);
                $crate::run_cases(
                    stringify!($name),
                    &__strategy,
                    |($($arg,)+)| -> ::std::result::Result<(), $crate::TestCaseError> {
                        $body
                        ::std::result::Result::Ok(())
                    },
                );
            }
        )*
    };
}

/// Fails the current case (without panicking) when `cond` is false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!($($fmt)+)));
        }
    };
}

/// Fails the current case when `left != right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, "assertion failed: {:?} == {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, $($fmt)+);
    }};
}

/// Fails the current case when `left == right`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l != r, "assertion failed: {:?} != {:?}", l, r);
    }};
}

/// Rejects (retries) the current case when `cond` is false.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #[test]
        fn ranges_and_tuples(a in 0usize..10, b in -1.0f64..1.0) {
            prop_assert!(a < 10);
            prop_assert!((-1.0..1.0).contains(&b));
        }

        #[test]
        fn vec_strategy_respects_sizes(
            fixed in crate::collection::vec(0u32..5, 4),
            ranged in crate::collection::vec(0.0f32..1.0, 1..7),
        ) {
            prop_assert_eq!(fixed.len(), 4);
            prop_assert!((1..7).contains(&ranged.len()));
        }

        #[test]
        fn combinators_compose(v in (1usize..5).prop_flat_map(|n|
            crate::collection::vec(0usize..100, n).prop_map(|mut xs| { xs.sort_unstable(); xs })
        ).prop_filter("nonempty", |xs| !xs.is_empty())) {
            prop_assume!(v.len() > 1);
            prop_assert!(v.windows(2).all(|w| w[0] <= w[1]));
        }
    }

    #[test]
    fn deterministic_per_name() {
        use super::{Strategy, TestRng};
        use rand::SeedableRng;
        let mut r1 = TestRng::seed_from_u64(super::name_seed("x"));
        let mut r2 = TestRng::seed_from_u64(super::name_seed("x"));
        let s = 0u64..1_000_000;
        assert_eq!(s.generate(&mut r1), s.generate(&mut r2));
    }
}
