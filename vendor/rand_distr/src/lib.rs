//! Offline stand-in for the `rand_distr` crate: the [`Distribution`] trait
//! plus the [`Normal`], [`Uniform`] and [`Dirichlet`] distributions the
//! Fed-MS workspace uses. Sampling is deterministic given the RNG stream
//! (Box–Muller for normals, Marsaglia–Tsang for the gamma draws behind the
//! Dirichlet), which preserves the simulator's bit-reproducibility.

use rand::RngCore;

/// Types that produce samples of `T` from an RNG.
pub trait Distribution<T> {
    /// Draws one sample.
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
}

/// Floating-point scalars the distributions are generic over.
pub trait Float: Copy {
    /// Lossy conversion from `f64`.
    fn from_f64(v: f64) -> Self;
    /// Lossless widening to `f64`.
    fn to_f64(self) -> f64;
}

impl Float for f32 {
    fn from_f64(v: f64) -> Self {
        v as f32
    }
    fn to_f64(self) -> f64 {
        self as f64
    }
}

impl Float for f64 {
    fn from_f64(v: f64) -> Self {
        v
    }
    fn to_f64(self) -> f64 {
        self
    }
}

/// Error for invalid distribution parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParameterError(&'static str);

impl core::fmt::Display for ParameterError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "invalid distribution parameter: {}", self.0)
    }
}

impl std::error::Error for ParameterError {}

/// Uniform draw in `[0, 1)` with 53 bits of precision.
fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// One standard-normal draw via Box–Muller (two uniforms per sample; no
/// cached spare, so sampling is stateless and `&self`).
fn standard_normal<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    // u1 in (0, 1] so ln(u1) is finite.
    let u1 = 1.0 - unit_f64(rng);
    let u2 = unit_f64(rng);
    (-2.0 * u1.ln()).sqrt() * (core::f64::consts::TAU * u2).cos()
}

/// The normal distribution `N(mean, std²)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Normal<F: Float> {
    mean: F,
    std: F,
}

impl<F: Float> Normal<F> {
    /// Creates the distribution.
    ///
    /// # Errors
    ///
    /// Returns [`ParameterError`] if `std` is negative or non-finite.
    pub fn new(mean: F, std: F) -> Result<Self, ParameterError> {
        let s = std.to_f64();
        if !s.is_finite() || s < 0.0 {
            return Err(ParameterError("std must be finite and non-negative"));
        }
        Ok(Normal { mean, std })
    }
}

impl<F: Float> Distribution<F> for Normal<F> {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> F {
        F::from_f64(self.mean.to_f64() + self.std.to_f64() * standard_normal(rng))
    }
}

/// The uniform distribution on `[low, high)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Uniform<F: Float> {
    low: F,
    high: F,
}

impl<F: Float> Uniform<F> {
    /// Creates the distribution.
    ///
    /// # Panics
    ///
    /// Panics if `low >= high` (mirrors upstream `rand` 0.8).
    pub fn new(low: F, high: F) -> Self {
        assert!(low.to_f64() < high.to_f64(), "Uniform requires low < high");
        Uniform { low, high }
    }
}

impl<F: Float> Distribution<F> for Uniform<F> {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> F {
        let (lo, hi) = (self.low.to_f64(), self.high.to_f64());
        F::from_f64(lo + (hi - lo) * unit_f64(rng))
    }
}

/// Gamma(shape, 1) sample, Marsaglia–Tsang with the α < 1 boost.
fn gamma_sample<R: RngCore + ?Sized>(rng: &mut R, shape: f64) -> f64 {
    if shape < 1.0 {
        // Boost: Gamma(α) = Gamma(α+1) · U^{1/α}.
        let u = 1.0 - unit_f64(rng); // (0, 1]
        return gamma_sample(rng, shape + 1.0) * u.powf(1.0 / shape);
    }
    let d = shape - 1.0 / 3.0;
    let c = 1.0 / (9.0 * d).sqrt();
    loop {
        let x = standard_normal(rng);
        let v = (1.0 + c * x).powi(3);
        if v <= 0.0 {
            continue;
        }
        let u = 1.0 - unit_f64(rng);
        if u.ln() < 0.5 * x * x + d - d * v + d * v.ln() {
            return d * v;
        }
    }
}

/// The symmetric Dirichlet distribution `Dir(α·1_K)` over the simplex.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Dirichlet {
    alpha: f64,
    size: usize,
}

impl Dirichlet {
    /// Creates a symmetric Dirichlet with concentration `alpha` over `size`
    /// components.
    ///
    /// # Errors
    ///
    /// Returns [`ParameterError`] unless `alpha > 0` (finite) and
    /// `size ≥ 2`.
    pub fn new_with_size(alpha: f64, size: usize) -> Result<Self, ParameterError> {
        if !(alpha.is_finite() && alpha > 0.0) {
            return Err(ParameterError("alpha must be positive and finite"));
        }
        if size < 2 {
            return Err(ParameterError("Dirichlet needs at least 2 components"));
        }
        Ok(Dirichlet { alpha, size })
    }
}

impl Distribution<Vec<f64>> for Dirichlet {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> Vec<f64> {
        let mut draws: Vec<f64> = (0..self.size).map(|_| gamma_sample(rng, self.alpha)).collect();
        let total: f64 = draws.iter().sum();
        if total <= 0.0 || !total.is_finite() {
            // Numerically degenerate (tiny alpha can underflow every gamma
            // draw): fall back to a uniform simplex point.
            return vec![1.0 / self.size as f64; self.size];
        }
        for d in &mut draws {
            *d /= total;
        }
        draws
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn normal_moments_plausible() {
        let mut rng = StdRng::seed_from_u64(1);
        let n = Normal::new(2.0f64, 0.5).unwrap();
        let samples: Vec<f64> = (0..20_000).map(|_| n.sample(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / samples.len() as f64;
        assert!((mean - 2.0).abs() < 0.02, "mean {mean}");
        assert!((var - 0.25).abs() < 0.02, "var {var}");
        assert!(Normal::new(0.0f32, -1.0).is_err());
        assert!(Normal::new(0.0f64, f64::NAN).is_err());
    }

    #[test]
    fn uniform_in_range() {
        let mut rng = StdRng::seed_from_u64(2);
        let u = Uniform::new(-3.0f32, 5.0);
        for _ in 0..1000 {
            let x = u.sample(&mut rng);
            assert!((-3.0..5.0).contains(&x));
        }
    }

    #[test]
    fn dirichlet_sums_to_one() {
        let mut rng = StdRng::seed_from_u64(3);
        for &alpha in &[0.05, 0.5, 1.0, 10.0, 1000.0] {
            let d = Dirichlet::new_with_size(alpha, 7).unwrap();
            let s = d.sample(&mut rng);
            assert_eq!(s.len(), 7);
            let total: f64 = s.iter().sum();
            assert!((total - 1.0).abs() < 1e-9, "alpha {alpha} total {total}");
            assert!(s.iter().all(|&p| (0.0..=1.0).contains(&p)));
        }
        assert!(Dirichlet::new_with_size(0.0, 5).is_err());
        assert!(Dirichlet::new_with_size(1.0, 1).is_err());
    }

    #[test]
    fn dirichlet_concentration_effect() {
        // Large alpha → near-uniform shares; small alpha → concentrated.
        let mut rng = StdRng::seed_from_u64(4);
        let tight = Dirichlet::new_with_size(1000.0, 4).unwrap().sample(&mut rng);
        assert!(tight.iter().all(|&p| (p - 0.25).abs() < 0.1), "{tight:?}");
        let spiky = Dirichlet::new_with_size(0.05, 4).unwrap().sample(&mut rng);
        let max = spiky.iter().copied().fold(0.0f64, f64::max);
        assert!(max > 0.5, "{spiky:?}");
    }
}
