//! # Fed-MS — fault tolerant federated edge learning with multiple Byzantine servers
//!
//! A from-scratch Rust reproduction of *Fed-MS: Fault Tolerant Federated
//! Edge Learning with Multiple Byzantine Servers* (Qi, Ma, Zou, Yuan, Li,
//! Yu — ICDCS 2024).
//!
//! The paper asks: what happens to federated learning when the **parameter
//! servers themselves** may be Byzantine? Its answer — multiple servers,
//! sparse uploading, and a client-side trimmed-mean model filter — is
//! implemented here on top of a complete, deterministic, pure-Rust stack:
//!
//! * [`tensor`] — dense `f32` tensors, matmul, im2col, seeded RNG streams,
//! * [`nn`] — hand-differentiated layers, SGD, an MLP and a miniature
//!   MobileNetV2,
//! * [`data`] — a synthetic CIFAR-10 stand-in and the Dirichlet `D_α`
//!   non-iid partitioner,
//! * [`aggregation`] — trimmed mean (the Fed-MS filter), median, Krum,
//!   geometric median, mean,
//! * [`attacks`] — the paper's Noise/Random/Safeguard/Backward server
//!   attacks plus sign-flip, zero and equivocation,
//! * [`sim`] — the K-client / P-server round-loop simulator with
//!   communication accounting,
//! * [`core`] — the Fed-MS algorithm itself ([`FedMsConfig`]) and the
//!   Theorem-1 theory module,
//! * [`exp`] — declarative sweep specs (`experiments/*.toml`), the
//!   work-stealing parallel scheduler and the resumable run store behind
//!   `fedms exp run`.
//!
//! # Quickstart
//!
//! ```no_run
//! use fedms::{AttackKind, FedMsConfig, FilterKind};
//!
//! // Table II federation; 2 of 10 servers Byzantine with the Random attack.
//! let mut cfg = FedMsConfig::paper_defaults(42)?;
//! cfg.byzantine_count = 2;
//! cfg.attack = AttackKind::Random { lo: -10.0, hi: 10.0 };
//! cfg.filter = FilterKind::TrimmedMean { beta: 0.2 };
//! let result = cfg.run()?;
//! println!("final mean accuracy: {:?}", result.final_accuracy());
//! # Ok::<(), fedms::CoreError>(())
//! ```
//!
//! Run `cargo run --release --example quickstart` for the end-to-end demo,
//! and see `crates/bench/src/bin/` for the binaries that regenerate every
//! table and figure of the paper.

pub use fedms_aggregation as aggregation;
pub use fedms_attacks as attacks;
pub use fedms_core as core;
pub use fedms_data as data;
pub use fedms_exp as exp;
pub use fedms_nn as nn;
pub use fedms_sim as sim;
pub use fedms_tensor as tensor;

pub use fedms_aggregation::{
    AdaptiveTrimmedMean, AggregationRule, Bulyan, ByzantineEstimator, CenteredClip,
    CoordinateMedian, Estimate, EstimatorPolicy, GeometricMedian, Krum, Mean, MultiKrum, NormBound,
    TrimmedMean,
};
pub use fedms_attacks::{
    AlieAttack, AttackContext, AttackKind, BackwardAttack, Benign, ClientAttack,
    ClientAttackContext, ClientAttackKind, Equivocation, IpmAttack, NoiseAttack, RandomAttack,
    RotatingAttack, SafeguardAttack, ServerAttack, SignFlipAttack, ZeroAttack,
};
pub use fedms_core::{theory, CoreError, FedMsConfig, FilterKind, TransportKind};
pub use fedms_data::{
    augment_dataset, Augmentation, BatchSampler, Dataset, DirichletPartitioner, LabelHistogram,
    SynthSensorConfig, SynthVision, SynthVisionConfig,
};
pub use fedms_nn::{AvgPool2d, BatchNorm2d, Dropout, MaxPool2d, Sequential, Sigmoid, Tanh};
pub use fedms_nn::{Layer, LrSchedule, Mlp, MobileNetNano, MobileNetNanoConfig, NeuralNet, Sgd};
pub use fedms_sim::{
    parse_attack_kind, CommStats, DegradedMode, EngineConfig, EventLog, FaultClass, FaultPlan,
    FaultSpec, LocalTransport, ModelSpec, NetModel, NetStats, NetThreat, NetTransport,
    RecoveryPolicy, ResilientTransport, RoundDiagnostics, RoundEvent, RoundMetrics, RunResult,
    RunSummary, ServerFault, SimError, SimulationEngine, Snapshot, ThreatEpoch, ThreatSchedule,
    ThreatView, Topology, Transport, UploadReport, UploadStrategy, WireError,
};
pub use fedms_tensor::{Backend, BackendHandle, BackendKind, Shape, Tensor, TensorError};
