//! `fedms` — command-line front end for the Fed-MS reproduction.
//!
//! ```text
//! fedms init-config <file.json>   write a template experiment config
//! fedms run [<file.json>]         run an experiment (defaults: Table II)
//! fedms exp run <spec.toml>       run a declarative sweep spec in parallel
//! fedms exp list <spec.toml>      print the trials a spec expands into
//! fedms exp check <run-dir>       verify a run directory is complete
//! fedms serve <addr>              play one parameter-server round over TCP
//! fedms client <addr>             upload a model to a `fedms serve` round
//! fedms attacks                   list server/client attack kinds
//! fedms filters                   list client-side filter kinds
//! ```
//!
//! `run` prints the per-round accuracy table and, with `--out <file>`,
//! writes the full metric record as JSON. `compare` runs several configs
//! and prints a summary table (final/best accuracy, convergence speed,
//! bytes uploaded). `exp run` executes a sweep spec (see `experiments/`)
//! on a work-stealing thread pool with a resumable run store under
//! `results/runs/<run-id>/`.

use fedms::exp::{SweepSpec, Trial, TrialStatus};
use fedms::sim::net::{run_client, TcpRound};
use fedms::{
    AttackKind, ClientAttackKind, FedMsConfig, FilterKind, NetModel, Snapshot, Tensor,
    TransportKind,
};
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  fedms init-config <file.json>\n  fedms run [<file.json>] [--out <file>] [--rounds <n>] [--seed <n>] [--save-checkpoint <file>] [--resume <file>]\n            [--crash <n>] [--crash-round <r>] [--stragglers <n>] [--straggler-delay <r>]\n            [--downlink-omission <p>] [--duplicate-rate <p>]\n            [--retry-budget <n>] [--attempt-timeout <ms>] [--backoff-base <ms>]\n            [--failover] [--proceed-degraded]\n            [--transport <local|net>] [--net-profile <ideal|edge>]\n            [--threat-schedule <spec>] [--estimate-b] [--backend <scalar|blocked>]\n  fedms serve <addr> [--expect <n>]\n  fedms client <addr> [--client <id>] [--dim <n>] [--value <x>]\n  fedms exp run <spec.toml> [--threads <n>] [--resume <run-id>] [--out-dir <dir>] [--dry-run|--list]\n  fedms exp list <spec.toml>\n  fedms exp check <run-dir>\n  fedms compare <a.json> <b.json> [...]\n  fedms attacks\n  fedms filters\n\nfault flags inject benign server/link faults on top of the config's\nscenario; victims are sampled deterministically from the run seed.\nrecovery flags enable deadline-driven retries with seed-deterministic\nbackoff (--retry-budget), upload failover to alternate servers\n(--failover), and local continuation instead of aborting when a client's\nview still degrades below quorum (--proceed-degraded).\n\n--transport net runs the round loop over the concurrent NetTransport\n(per-server actors, versioned wire frames); --net-profile edge adds the\nedge-network latency/bandwidth model, making stragglers and deadline\nmisses emerge from the network itself. `serve` binds one TCP parameter\nserver for a single round (port 0 picks a free port) and `client`\nuploads to it over the same wire frames.\n\n--threat-schedule drives a dynamic threat timeline: epochs separated by\n';', each 'START..END: key=value, ...' with keys compromise=IDS,\nattack=NAME[:P[:P]], partition=IDS, corrupt=RATE (ids '|'-separated).\nExample: '50..80: compromise=1|3, attack=random:-10:10; 60..: partition=5'.\n--estimate-b turns on the online Byzantine-count estimator: the filter\nbecomes an adaptive trimmed mean driven by a per-round B-hat.\n--backend selects the compute backend for client training: scalar (the\ndeterministic default) or blocked (cache-blocked vectorized kernels;\nrequires a binary built with --features backend-blocked).\n\n`exp run` executes a declarative sweep spec (see experiments/*.toml) on a\nwork-stealing thread pool; records land in <out-dir>/<run-id>/ and a\nre-run (or --resume <run-id>) skips every already-completed trial."
    );
    ExitCode::FAILURE
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else {
        return usage();
    };
    match cmd.as_str() {
        "init-config" => init_config(&args[1..]),
        "run" => run(&args[1..]),
        "exp" => exp(&args[1..]),
        "compare" => compare(&args[1..]),
        "serve" => serve(&args[1..]),
        "client" => client(&args[1..]),
        "attacks" => {
            println!("server attacks (FedMsConfig.attack):");
            for kind in [
                AttackKind::Benign,
                AttackKind::Noise { std: 1.0 },
                AttackKind::Random { lo: -10.0, hi: 10.0 },
                AttackKind::Safeguard { gamma: 0.6 },
                AttackKind::Backward { delay: 2 },
                AttackKind::SignFlip { scale: 1.0 },
                AttackKind::Zero,
                AttackKind::Alie { z: 1.0 },
                AttackKind::Ipm { epsilon: 0.5 },
            ] {
                println!("  {:<10} {:?}", kind.label(), kind);
            }
            println!("client attacks (FedMsConfig.client_attack):");
            for kind in [
                ClientAttackKind::SignFlip { scale: 1.0 },
                ClientAttackKind::Noise { std: 1.0 },
                ClientAttackKind::Random { lo: -10.0, hi: 10.0 },
                ClientAttackKind::Amplify { factor: 10.0 },
                ClientAttackKind::LabelFlip { offset: 1 },
            ] {
                println!("  {:<10} {:?}", kind.label(), kind);
            }
            ExitCode::SUCCESS
        }
        "filters" => {
            println!("client-side filters (FedMsConfig.filter / .server_filter):");
            for kind in [
                FilterKind::Mean,
                FilterKind::TrimmedMean { beta: 0.2 },
                FilterKind::AdaptiveTrimmedMean { trim: 2 },
                FilterKind::Median,
                FilterKind::Krum { f: 2 },
                FilterKind::MultiKrum { f: 2, m: 4 },
                FilterKind::GeometricMedian,
                FilterKind::Bulyan { f: 1 },
            ] {
                println!("  {:<12} {:?}", kind.label(), kind);
            }
            ExitCode::SUCCESS
        }
        _ => usage(),
    }
}

fn exp(args: &[String]) -> ExitCode {
    match args.first().map(String::as_str) {
        Some("run") => exp_run(&args[1..]),
        Some("list") => exp_list(&args[1..]),
        Some("check") => exp_check(&args[1..]),
        _ => usage(),
    }
}

/// Parses a spec file, applies the harness env overrides, and expands it.
fn load_spec(path: &str) -> Result<(SweepSpec, Vec<Trial>), String> {
    let source =
        std::fs::read_to_string(path).map_err(|e| format!("could not read {path}: {e}"))?;
    let mut spec = SweepSpec::parse(&source).map_err(|e| format!("{path}: {e}"))?;
    spec.apply_env();
    let trials = spec.expand().map_err(|e| format!("{path}: {e}"))?;
    Ok((spec, trials))
}

fn print_trials(spec: &SweepSpec, trials: &[Trial]) {
    println!(
        "sweep `{}`: {} trials, {} rounds, seeds {:?} -> run id {}",
        spec.name,
        trials.len(),
        spec.rounds,
        spec.seeds,
        spec.default_run_id()
    );
    for t in trials {
        println!("  {:<48} [{}]", t.id, t.label);
    }
}

fn exp_run(args: &[String]) -> ExitCode {
    let mut spec_path: Option<&str> = None;
    let mut threads: Option<usize> = None;
    let mut resume: Option<&str> = None;
    let mut out_dir = "results/runs".to_string();
    let mut dry_run = false;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--threads" => threads = it.next().and_then(|v| v.parse().ok()),
            "--resume" => resume = it.next().map(String::as_str),
            "--out-dir" => {
                if let Some(dir) = it.next() {
                    out_dir = dir.clone();
                }
            }
            "--dry-run" | "--list" => dry_run = true,
            other if !other.starts_with("--") && spec_path.is_none() => spec_path = Some(other),
            other => {
                eprintln!("error: unrecognised argument {other}");
                return usage();
            }
        }
    }
    let Some(spec_path) = spec_path else {
        return usage();
    };
    if dry_run {
        return exp_list(&[spec_path.to_string()]);
    }
    let source = match std::fs::read_to_string(spec_path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: could not read {spec_path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let threads = threads.unwrap_or_else(fedms::exp::threads_from_env);
    match fedms::exp::run_spec_in(
        &source,
        std::path::Path::new(&out_dir),
        resume,
        threads,
        fedms::exp::print_progress,
    ) {
        Ok((spec, store, report)) => {
            println!(
                "sweep `{}`: {} executed, {} skipped, {} failed -> {}",
                spec.name,
                report.executed,
                report.skipped,
                report.failed,
                store.root().display()
            );
            if report.failed > 0 {
                eprintln!(
                    "error: {} trial(s) failed; re-run to retry them (completed trials are skipped)",
                    report.failed
                );
                return ExitCode::FAILURE;
            }
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn exp_list(args: &[String]) -> ExitCode {
    let Some(spec_path) = args.first() else {
        return usage();
    };
    match load_spec(spec_path) {
        Ok((spec, trials)) => {
            print_trials(&spec, &trials);
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

/// Verifies a run directory: the manifest must load and every trial it
/// lists must have a parseable, completed record.
fn exp_check(args: &[String]) -> ExitCode {
    let Some(dir) = args.first() else {
        return usage();
    };
    let store = match fedms::exp::RunStore::open_existing(std::path::Path::new(dir)) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let manifest = match store.load_manifest() {
        Ok(m) => m,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let records = match store.all_records() {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: could not list records: {e}");
            return ExitCode::FAILURE;
        }
    };
    let mut problems = 0usize;
    let mut completed = 0usize;
    for trial in &manifest.trials {
        match records.iter().find(|(id, _)| id == &trial.id) {
            None => {
                println!("  [missing] {}", trial.id);
                problems += 1;
            }
            Some((_, Err(e))) => {
                println!("  [corrupt] {}: {e}", trial.id);
                problems += 1;
            }
            Some((_, Ok(record))) => match &record.status {
                TrialStatus::Completed => completed += 1,
                TrialStatus::Failed { error } => {
                    println!("  [failed]  {}: {error}", trial.id);
                    problems += 1;
                }
            },
        }
    }
    for (id, _) in &records {
        if !manifest.trials.iter().any(|t| &t.id == id) {
            println!("  [orphan]  {id} (not in manifest)");
            problems += 1;
        }
    }
    println!(
        "run `{}` (spec hash {}, git {}): {}/{} trials completed, {} problem(s)",
        manifest.run_id,
        manifest.spec_hash,
        manifest.git_rev,
        completed,
        manifest.trials.len(),
        problems
    );
    if problems > 0 {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

fn init_config(args: &[String]) -> ExitCode {
    let Some(path) = args.first() else {
        return usage();
    };
    let cfg = match FedMsConfig::paper_defaults(42) {
        Ok(mut cfg) => {
            cfg.byzantine_count = 2;
            cfg.attack = AttackKind::Random { lo: -10.0, hi: 10.0 };
            cfg
        }
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let body = match serde_json::to_string_pretty(&cfg) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("error: could not serialise config: {e}");
            return ExitCode::FAILURE;
        }
    };
    if let Err(e) = std::fs::write(path, body) {
        eprintln!("error: could not write {path}: {e}");
        return ExitCode::FAILURE;
    }
    println!("wrote template config to {path}; edit and `fedms run {path}`");
    ExitCode::SUCCESS
}

fn compare(args: &[String]) -> ExitCode {
    if args.is_empty() {
        return usage();
    }
    println!(
        "{:<24} {:>10} {:>10} {:>12} {:>12}",
        "config", "final acc", "best acc", "rnds to 90%", "upload MiB"
    );
    for path in args {
        let cfg: FedMsConfig = match std::fs::read_to_string(path)
            .map_err(|e| e.to_string())
            .and_then(|body| serde_json::from_str(&body).map_err(|e| e.to_string()))
        {
            Ok(cfg) => cfg,
            Err(e) => {
                eprintln!("error: could not load {path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        let result = match cfg.run() {
            Ok(r) => r,
            Err(e) => {
                eprintln!("error: {path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        let Some(summary) = result.summary() else {
            eprintln!("error: {path}: run produced no evaluated rounds");
            return ExitCode::FAILURE;
        };
        let name = std::path::Path::new(path)
            .file_stem()
            .map(|s| s.to_string_lossy().into_owned())
            .unwrap_or_else(|| path.clone());
        println!(
            "{:<24} {:>9.1}% {:>9.1}% {:>12} {:>12.1}",
            name,
            summary.final_accuracy * 100.0,
            summary.best_accuracy * 100.0,
            summary.rounds_to_90pct_of_final.map_or("-".to_string(), |r| r.to_string()),
            summary.upload_bytes as f64 / (1024.0 * 1024.0)
        );
    }
    ExitCode::SUCCESS
}

fn run(args: &[String]) -> ExitCode {
    let mut config_path: Option<&str> = None;
    let mut out_path: Option<&str> = None;
    let mut rounds: Option<usize> = None;
    let mut seed: Option<u64> = None;
    let mut save_checkpoint: Option<&str> = None;
    let mut resume: Option<&str> = None;
    let mut crash: Option<usize> = None;
    let mut crash_round: Option<usize> = None;
    let mut stragglers: Option<usize> = None;
    let mut straggler_delay: Option<usize> = None;
    let mut downlink_omission: Option<f64> = None;
    let mut duplicate_rate: Option<f64> = None;
    let mut retry_budget: Option<u32> = None;
    let mut attempt_timeout: Option<u64> = None;
    let mut backoff_base: Option<u64> = None;
    let mut failover = false;
    let mut proceed_degraded = false;
    let mut transport: Option<&str> = None;
    let mut net_profile: Option<&str> = None;
    let mut threat_schedule: Option<&str> = None;
    let mut estimate_b = false;
    let mut backend: Option<&str> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--out" => out_path = it.next().map(String::as_str),
            "--rounds" => rounds = it.next().and_then(|v| v.parse().ok()),
            "--seed" => seed = it.next().and_then(|v| v.parse().ok()),
            "--save-checkpoint" => save_checkpoint = it.next().map(String::as_str),
            "--resume" => resume = it.next().map(String::as_str),
            "--crash" => crash = it.next().and_then(|v| v.parse().ok()),
            "--crash-round" => crash_round = it.next().and_then(|v| v.parse().ok()),
            "--stragglers" => stragglers = it.next().and_then(|v| v.parse().ok()),
            "--straggler-delay" => straggler_delay = it.next().and_then(|v| v.parse().ok()),
            "--downlink-omission" => downlink_omission = it.next().and_then(|v| v.parse().ok()),
            "--duplicate-rate" => duplicate_rate = it.next().and_then(|v| v.parse().ok()),
            "--retry-budget" => retry_budget = it.next().and_then(|v| v.parse().ok()),
            "--attempt-timeout" => attempt_timeout = it.next().and_then(|v| v.parse().ok()),
            "--backoff-base" => backoff_base = it.next().and_then(|v| v.parse().ok()),
            "--failover" => failover = true,
            "--proceed-degraded" => proceed_degraded = true,
            "--transport" => transport = it.next().map(String::as_str),
            "--net-profile" => net_profile = it.next().map(String::as_str),
            "--threat-schedule" => threat_schedule = it.next().map(String::as_str),
            "--estimate-b" => estimate_b = true,
            "--backend" => backend = it.next().map(String::as_str),
            other if !other.starts_with("--") && config_path.is_none() => config_path = Some(other),
            other => {
                eprintln!("error: unrecognised argument {other}");
                return usage();
            }
        }
    }

    let mut cfg = match config_path {
        Some(path) => match std::fs::read_to_string(path)
            .map_err(|e| e.to_string())
            .and_then(|body| serde_json::from_str::<FedMsConfig>(&body).map_err(|e| e.to_string()))
        {
            Ok(cfg) => cfg,
            Err(e) => {
                eprintln!("error: could not load {path}: {e}");
                return ExitCode::FAILURE;
            }
        },
        None => match FedMsConfig::paper_defaults(42) {
            Ok(cfg) => cfg,
            Err(e) => {
                eprintln!("error: {e}");
                return ExitCode::FAILURE;
            }
        },
    };
    if let Some(r) = rounds {
        cfg.rounds = r;
    }
    if let Some(s) = seed {
        cfg.seed = s;
    }
    if let Some(n) = crash {
        cfg.fault.crashed_servers = n;
    }
    if let Some(r) = crash_round {
        cfg.fault.crash_round = r;
    }
    if let Some(n) = stragglers {
        cfg.fault.straggler_servers = n;
        if cfg.fault.straggler_delay == 0 {
            cfg.fault.straggler_delay = 1;
        }
    }
    if let Some(d) = straggler_delay {
        cfg.fault.straggler_delay = d;
    }
    if let Some(p) = downlink_omission {
        cfg.fault.downlink_omission = p;
    }
    if let Some(p) = duplicate_rate {
        cfg.fault.duplicate_rate = p;
    }
    if let Some(n) = retry_budget {
        cfg.recovery.retry_budget = n;
    }
    if let Some(ms) = attempt_timeout {
        cfg.recovery.attempt_timeout_ms = ms;
    }
    if let Some(ms) = backoff_base {
        cfg.recovery.backoff_base_ms = ms;
        cfg.recovery.backoff_cap_ms = cfg.recovery.backoff_cap_ms.max(ms);
    }
    if failover {
        cfg.recovery.failover = true;
    }
    if proceed_degraded {
        cfg.recovery.on_degraded = fedms::DegradedMode::Proceed;
    }
    match transport {
        None => {}
        Some("local") => cfg.transport = TransportKind::Local,
        Some("net") => cfg.transport = TransportKind::Net,
        Some(other) => {
            eprintln!("error: unknown transport {other} (expected local or net)");
            return usage();
        }
    }
    match net_profile {
        None => {}
        Some("ideal") => cfg.net_model = NetModel::ideal(),
        Some("edge") => cfg.net_model = NetModel::edge(),
        Some(other) => {
            eprintln!("error: unknown net profile {other} (expected ideal or edge)");
            return usage();
        }
    }
    if let Some(name) = backend {
        cfg.backend = match fedms::BackendKind::parse(name) {
            Ok(kind) => kind,
            Err(e) => {
                eprintln!("error: bad --backend: {e}");
                return usage();
            }
        };
    }
    if let Some(spec) = threat_schedule {
        cfg.threat = match fedms::ThreatSchedule::parse(spec) {
            Ok(schedule) => schedule,
            Err(e) => {
                eprintln!("error: bad --threat-schedule: {e}");
                return usage();
            }
        };
    }
    if estimate_b {
        cfg.estimator = fedms::EstimatorPolicy::enabled();
    }

    println!(
        "fed-ms run: K={} P={} B={} attack={} filter={} rounds={} seed={}",
        cfg.clients,
        cfg.servers,
        cfg.byzantine_count,
        cfg.attack.label(),
        cfg.filter.label(),
        cfg.rounds,
        cfg.seed
    );
    if !cfg.fault.is_trivial() {
        println!(
            "faults: crash={}@round {} stragglers={}(+{} rounds) omission={} duplicates={}",
            cfg.fault.crashed_servers,
            cfg.fault.crash_round,
            cfg.fault.straggler_servers,
            cfg.fault.straggler_delay,
            cfg.fault.downlink_omission,
            cfg.fault.duplicate_rate
        );
    }
    if !cfg.threat.is_trivial() {
        println!(
            "threat schedule: {} epoch(s) — mid-run compromise/partition/corruption driven \
             from the run seed",
            cfg.threat.epochs.len()
        );
    }
    if cfg.estimator.enabled {
        println!(
            "estimator: online B-hat (decay={} scale={} threshold={} floor={} ceiling={})",
            cfg.estimator.decay(),
            cfg.estimator.scale(),
            cfg.estimator.threshold(),
            cfg.estimator.floor,
            cfg.estimator.effective_ceiling(cfg.servers),
        );
    }
    if !cfg.recovery.is_disabled() {
        println!(
            "recovery: retries={} timeout={}ms backoff={}ms(cap {}ms) failover={} degraded={}",
            cfg.recovery.retry_budget,
            cfg.recovery.attempt_timeout_ms,
            cfg.recovery.backoff_base_ms,
            cfg.recovery.backoff_cap_ms,
            cfg.recovery.failover,
            match cfg.recovery.on_degraded {
                fedms::DegradedMode::Abort => "abort",
                fedms::DegradedMode::Proceed => "proceed",
            }
        );
    }
    let mut engine = match cfg.build_engine() {
        Ok(e) => e,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!("transport: {}", engine.transport().name());
    if let Some(path) = resume {
        let snapshot: Snapshot = match std::fs::read_to_string(path)
            .map_err(|e| e.to_string())
            .and_then(|body| serde_json::from_str(&body).map_err(|e| e.to_string()))
        {
            Ok(s) => s,
            Err(e) => {
                eprintln!("error: could not load checkpoint {path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        if let Err(e) = engine.restore(&snapshot) {
            eprintln!("error: checkpoint does not fit this config: {e}");
            return ExitCode::FAILURE;
        }
        println!("resumed from {path} at round {}", snapshot.round);
    }
    let result = match engine.run(cfg.rounds) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: {e}");
            if let fedms::SimError::DegradedQuorum { received, beta_hat, threat_epoch, .. } = e {
                match beta_hat {
                    // The estimator set the quorum bar: distinguish "B̂ is
                    // too aggressive for the surviving view" from "the
                    // servers actually died".
                    Some(trim) if received > 0 && 2 * trim >= received => eprintln!(
                        "hint: the online estimator is trimming {trim} per side, which the \
                         {received} surviving server model(s) cannot satisfy — the estimator \
                         over-trimmed (lower the estimator ceiling or raise its threshold), \
                         or ride it out with --proceed-degraded"
                    ),
                    _ => eprintln!(
                        "hint: servers went silent{}; enable the recovery layer \
                         (--retry-budget <n> and/or --failover) to repair transient losses, \
                         or --proceed-degraded to ride out the round on local models",
                        match threat_epoch {
                            Some(epoch) => format!(" (threat epoch {epoch} is active)"),
                            None => String::new(),
                        }
                    ),
                }
            }
            return ExitCode::FAILURE;
        }
    };
    if let Some(path) = save_checkpoint {
        match serde_json::to_string(&engine.snapshot()) {
            Ok(body) => {
                if let Err(e) = std::fs::write(path, body) {
                    eprintln!("error: could not write checkpoint {path}: {e}");
                    return ExitCode::FAILURE;
                }
                println!("checkpoint saved to {path} (round {})", engine.round());
            }
            Err(e) => {
                eprintln!("error: could not serialise checkpoint: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    println!("{:>6} {:>10} {:>12}", "round", "accuracy", "train loss");
    for m in &result.rounds {
        println!("{:>6} {:>9.1}% {:>12.4}", m.round, m.mean_accuracy * 100.0, m.mean_train_loss);
    }
    println!(
        "final accuracy {:.1}%  uploads {}  upload bytes {}",
        result.final_accuracy().unwrap_or(0.0) * 100.0,
        result.total_comm.upload_messages,
        result.total_comm.upload_bytes
    );
    let comm = result.total_comm;
    if comm.dropped_uploads + comm.dropped_downloads + comm.duplicated_downloads > 0 {
        println!(
            "fault losses: {} uploads dropped, {} downloads dropped, {} duplicated",
            comm.dropped_uploads, comm.dropped_downloads, comm.duplicated_downloads
        );
    }
    if comm.retried_uploads + comm.failover_uploads + comm.retried_downloads + comm.deadline_misses
        > 0
    {
        println!(
            "recovery: {} upload retries, {} failovers, {} download retransmissions, {} deadline misses",
            comm.retried_uploads, comm.failover_uploads, comm.retried_downloads, comm.deadline_misses
        );
    }
    if let Some(path) = out_path {
        match serde_json::to_string_pretty(&result) {
            Ok(body) => {
                if let Err(e) = std::fs::write(path, body) {
                    eprintln!("error: could not write {path}: {e}");
                    return ExitCode::FAILURE;
                }
                println!("wrote metrics to {path}");
            }
            Err(e) => {
                eprintln!("error: could not serialise metrics: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}

/// `fedms serve <addr> [--expect <n>]` — bind one TCP parameter server
/// and play a single aggregation round: accept connections until
/// `--expect` uploads arrive (default 1), folding each into the running
/// mean and replying with the aggregate-so-far.
fn serve(args: &[String]) -> ExitCode {
    let mut addr: Option<&str> = None;
    let mut expect: usize = 1;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--expect" => expect = it.next().and_then(|v| v.parse().ok()).unwrap_or(expect),
            other if !other.starts_with("--") && addr.is_none() => addr = Some(other),
            other => {
                eprintln!("error: unrecognised argument {other}");
                return usage();
            }
        }
    }
    let Some(addr) = addr else {
        return usage();
    };
    let round = match TcpRound::bind(addr) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: could not bind {addr}: {e}");
            return ExitCode::FAILURE;
        }
    };
    match round.local_addr() {
        Ok(bound) => println!(
            "serving one round on {bound} (waiting for {expect} upload{})",
            if expect == 1 { "" } else { "s" }
        ),
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    }
    let report = match round.serve(expect) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!(
        "round complete: {} uploads, {} frames read, {} frames written",
        report.uploads, report.frames_read, report.frames_written
    );
    if let Some(agg) = report.aggregate {
        println!("aggregate: {}", preview_tensor(&agg));
    }
    ExitCode::SUCCESS
}

/// `fedms client <addr> [--client <id>] [--dim <n>] [--value <x>]` —
/// connect to a `fedms serve` round, upload a constant model of `--dim`
/// coordinates (filled with `--value`, defaulting to the client id) and
/// print the server's aggregate reply.
fn client(args: &[String]) -> ExitCode {
    let mut addr: Option<&str> = None;
    let mut client_id: usize = 0;
    let mut dim: usize = 8;
    let mut value: Option<f32> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--client" => client_id = it.next().and_then(|v| v.parse().ok()).unwrap_or(client_id),
            "--dim" => dim = it.next().and_then(|v| v.parse().ok()).unwrap_or(dim),
            "--value" => value = it.next().and_then(|v| v.parse().ok()),
            other if !other.starts_with("--") && addr.is_none() => addr = Some(other),
            other => {
                eprintln!("error: unrecognised argument {other}");
                return usage();
            }
        }
    }
    let Some(addr) = addr else {
        return usage();
    };
    if dim == 0 {
        eprintln!("error: --dim must be positive");
        return ExitCode::FAILURE;
    }
    let fill = value.unwrap_or(client_id as f32);
    let model = Tensor::from_slice(&vec![fill; dim]);
    match run_client(addr, client_id, &model) {
        Ok((contributors, aggregate)) => {
            println!(
                "uploaded {dim} coordinates as client {client_id}; \
                 aggregate over {contributors} contributor{}: {}",
                if contributors == 1 { "" } else { "s" },
                preview_tensor(&aggregate)
            );
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

/// Formats the first few coordinates of a tensor for terminal output.
fn preview_tensor(t: &Tensor) -> String {
    let data = t.as_slice();
    let head: Vec<String> = data.iter().take(8).map(|v| format!("{v:.4}")).collect();
    let tail = if data.len() > 8 { ", ..." } else { "" };
    format!("[{}{}] ({} coordinates)", head.join(", "), tail, data.len())
}
