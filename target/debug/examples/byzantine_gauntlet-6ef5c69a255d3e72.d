/root/repo/target/debug/examples/byzantine_gauntlet-6ef5c69a255d3e72.d: examples/byzantine_gauntlet.rs

/root/repo/target/debug/examples/byzantine_gauntlet-6ef5c69a255d3e72: examples/byzantine_gauntlet.rs

examples/byzantine_gauntlet.rs:
