/root/repo/target/debug/examples/heterogeneity_study-b72490f2ff46f561.d: examples/heterogeneity_study.rs

/root/repo/target/debug/examples/heterogeneity_study-b72490f2ff46f561: examples/heterogeneity_study.rs

examples/heterogeneity_study.rs:
