/root/repo/target/debug/examples/industrial_iot-bb308819ab19d4ca.d: examples/industrial_iot.rs

/root/repo/target/debug/examples/industrial_iot-bb308819ab19d4ca: examples/industrial_iot.rs

examples/industrial_iot.rs:
