/root/repo/target/debug/examples/theory_playground-8491732571df3e66.d: examples/theory_playground.rs Cargo.toml

/root/repo/target/debug/examples/libtheory_playground-8491732571df3e66.rmeta: examples/theory_playground.rs Cargo.toml

examples/theory_playground.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
