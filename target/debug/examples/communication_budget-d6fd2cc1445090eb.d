/root/repo/target/debug/examples/communication_budget-d6fd2cc1445090eb.d: examples/communication_budget.rs Cargo.toml

/root/repo/target/debug/examples/libcommunication_budget-d6fd2cc1445090eb.rmeta: examples/communication_budget.rs Cargo.toml

examples/communication_budget.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
