/root/repo/target/debug/examples/heterogeneity_study-74794d728feec978.d: examples/heterogeneity_study.rs Cargo.toml

/root/repo/target/debug/examples/libheterogeneity_study-74794d728feec978.rmeta: examples/heterogeneity_study.rs Cargo.toml

examples/heterogeneity_study.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
