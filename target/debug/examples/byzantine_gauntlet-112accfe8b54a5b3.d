/root/repo/target/debug/examples/byzantine_gauntlet-112accfe8b54a5b3.d: examples/byzantine_gauntlet.rs Cargo.toml

/root/repo/target/debug/examples/libbyzantine_gauntlet-112accfe8b54a5b3.rmeta: examples/byzantine_gauntlet.rs Cargo.toml

examples/byzantine_gauntlet.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
