/root/repo/target/debug/examples/communication_budget-642e893c09b0d697.d: examples/communication_budget.rs

/root/repo/target/debug/examples/communication_budget-642e893c09b0d697: examples/communication_budget.rs

examples/communication_budget.rs:
