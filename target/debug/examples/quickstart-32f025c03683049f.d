/root/repo/target/debug/examples/quickstart-32f025c03683049f.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-32f025c03683049f: examples/quickstart.rs

examples/quickstart.rs:
