/root/repo/target/debug/examples/industrial_iot-0e2bde813f297dc6.d: examples/industrial_iot.rs Cargo.toml

/root/repo/target/debug/examples/libindustrial_iot-0e2bde813f297dc6.rmeta: examples/industrial_iot.rs Cargo.toml

examples/industrial_iot.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
