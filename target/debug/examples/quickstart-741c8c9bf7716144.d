/root/repo/target/debug/examples/quickstart-741c8c9bf7716144.d: examples/quickstart.rs Cargo.toml

/root/repo/target/debug/examples/libquickstart-741c8c9bf7716144.rmeta: examples/quickstart.rs Cargo.toml

examples/quickstart.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
