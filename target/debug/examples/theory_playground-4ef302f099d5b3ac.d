/root/repo/target/debug/examples/theory_playground-4ef302f099d5b3ac.d: examples/theory_playground.rs

/root/repo/target/debug/examples/theory_playground-4ef302f099d5b3ac: examples/theory_playground.rs

examples/theory_playground.rs:
