/root/repo/target/debug/deps/fig2_noise_round-b0cf37fc18289917.d: crates/bench/benches/fig2_noise_round.rs Cargo.toml

/root/repo/target/debug/deps/libfig2_noise_round-b0cf37fc18289917.rmeta: crates/bench/benches/fig2_noise_round.rs Cargo.toml

crates/bench/benches/fig2_noise_round.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
