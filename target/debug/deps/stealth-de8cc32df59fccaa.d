/root/repo/target/debug/deps/stealth-de8cc32df59fccaa.d: crates/bench/src/bin/stealth.rs Cargo.toml

/root/repo/target/debug/deps/libstealth-de8cc32df59fccaa.rmeta: crates/bench/src/bin/stealth.rs Cargo.toml

crates/bench/src/bin/stealth.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
