/root/repo/target/debug/deps/fedms-477d311412cee12e.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libfedms-477d311412cee12e.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
