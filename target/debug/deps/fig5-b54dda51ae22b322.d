/root/repo/target/debug/deps/fig5-b54dda51ae22b322.d: crates/bench/src/bin/fig5.rs

/root/repo/target/debug/deps/fig5-b54dda51ae22b322: crates/bench/src/bin/fig5.rs

crates/bench/src/bin/fig5.rs:
