/root/repo/target/debug/deps/table2-ed3e122d5bc9b348.d: crates/bench/src/bin/table2.rs

/root/repo/target/debug/deps/table2-ed3e122d5bc9b348: crates/bench/src/bin/table2.rs

crates/bench/src/bin/table2.rs:
