/root/repo/target/debug/deps/worstcase-83aa7d7aa2bd5b1b.d: crates/bench/src/bin/worstcase.rs Cargo.toml

/root/repo/target/debug/deps/libworstcase-83aa7d7aa2bd5b1b.rmeta: crates/bench/src/bin/worstcase.rs Cargo.toml

crates/bench/src/bin/worstcase.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
