/root/repo/target/debug/deps/table2-a077ee14cbe6e69c.d: crates/bench/src/bin/table2.rs Cargo.toml

/root/repo/target/debug/deps/libtable2-a077ee14cbe6e69c.rmeta: crates/bench/src/bin/table2.rs Cargo.toml

crates/bench/src/bin/table2.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
