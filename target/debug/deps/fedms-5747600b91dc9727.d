/root/repo/target/debug/deps/fedms-5747600b91dc9727.d: src/main.rs

/root/repo/target/debug/deps/fedms-5747600b91dc9727: src/main.rs

src/main.rs:
