/root/repo/target/debug/deps/fig2-ad8bf043f4d64311.d: crates/bench/src/bin/fig2.rs

/root/repo/target/debug/deps/fig2-ad8bf043f4d64311: crates/bench/src/bin/fig2.rs

crates/bench/src/bin/fig2.rs:
