/root/repo/target/debug/deps/fedms_tensor-7e229395dee1f4d2.d: crates/tensor/src/lib.rs crates/tensor/src/conv.rs crates/tensor/src/error.rs crates/tensor/src/ops.rs crates/tensor/src/rng.rs crates/tensor/src/shape.rs crates/tensor/src/stats.rs crates/tensor/src/tensor.rs

/root/repo/target/debug/deps/fedms_tensor-7e229395dee1f4d2: crates/tensor/src/lib.rs crates/tensor/src/conv.rs crates/tensor/src/error.rs crates/tensor/src/ops.rs crates/tensor/src/rng.rs crates/tensor/src/shape.rs crates/tensor/src/stats.rs crates/tensor/src/tensor.rs

crates/tensor/src/lib.rs:
crates/tensor/src/conv.rs:
crates/tensor/src/error.rs:
crates/tensor/src/ops.rs:
crates/tensor/src/rng.rs:
crates/tensor/src/shape.rs:
crates/tensor/src/stats.rs:
crates/tensor/src/tensor.rs:
