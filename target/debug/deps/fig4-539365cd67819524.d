/root/repo/target/debug/deps/fig4-539365cd67819524.d: crates/bench/src/bin/fig4.rs

/root/repo/target/debug/deps/fig4-539365cd67819524: crates/bench/src/bin/fig4.rs

crates/bench/src/bin/fig4.rs:
