/root/repo/target/debug/deps/fedms_tensor-377218349e092086.d: crates/tensor/src/lib.rs crates/tensor/src/conv.rs crates/tensor/src/error.rs crates/tensor/src/ops.rs crates/tensor/src/rng.rs crates/tensor/src/shape.rs crates/tensor/src/stats.rs crates/tensor/src/tensor.rs Cargo.toml

/root/repo/target/debug/deps/libfedms_tensor-377218349e092086.rmeta: crates/tensor/src/lib.rs crates/tensor/src/conv.rs crates/tensor/src/error.rs crates/tensor/src/ops.rs crates/tensor/src/rng.rs crates/tensor/src/shape.rs crates/tensor/src/stats.rs crates/tensor/src/tensor.rs Cargo.toml

crates/tensor/src/lib.rs:
crates/tensor/src/conv.rs:
crates/tensor/src/error.rs:
crates/tensor/src/ops.rs:
crates/tensor/src/rng.rs:
crates/tensor/src/shape.rs:
crates/tensor/src/stats.rs:
crates/tensor/src/tensor.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
