/root/repo/target/debug/deps/proptests-b1c3ab04307fc5e1.d: crates/data/tests/proptests.rs

/root/repo/target/debug/deps/proptests-b1c3ab04307fc5e1: crates/data/tests/proptests.rs

crates/data/tests/proptests.rs:
