/root/repo/target/debug/deps/proptests-8b6a3587d4e779f8.d: crates/sim/tests/proptests.rs

/root/repo/target/debug/deps/proptests-8b6a3587d4e779f8: crates/sim/tests/proptests.rs

crates/sim/tests/proptests.rs:
