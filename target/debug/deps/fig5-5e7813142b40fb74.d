/root/repo/target/debug/deps/fig5-5e7813142b40fb74.d: crates/bench/src/bin/fig5.rs

/root/repo/target/debug/deps/fig5-5e7813142b40fb74: crates/bench/src/bin/fig5.rs

crates/bench/src/bin/fig5.rs:
