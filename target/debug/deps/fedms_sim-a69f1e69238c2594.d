/root/repo/target/debug/deps/fedms_sim-a69f1e69238c2594.d: crates/sim/src/lib.rs crates/sim/src/client.rs crates/sim/src/comm.rs crates/sim/src/engine.rs crates/sim/src/error.rs crates/sim/src/events.rs crates/sim/src/fault.rs crates/sim/src/metrics.rs crates/sim/src/model_spec.rs crates/sim/src/server.rs crates/sim/src/topology.rs crates/sim/src/upload.rs

/root/repo/target/debug/deps/libfedms_sim-a69f1e69238c2594.rlib: crates/sim/src/lib.rs crates/sim/src/client.rs crates/sim/src/comm.rs crates/sim/src/engine.rs crates/sim/src/error.rs crates/sim/src/events.rs crates/sim/src/fault.rs crates/sim/src/metrics.rs crates/sim/src/model_spec.rs crates/sim/src/server.rs crates/sim/src/topology.rs crates/sim/src/upload.rs

/root/repo/target/debug/deps/libfedms_sim-a69f1e69238c2594.rmeta: crates/sim/src/lib.rs crates/sim/src/client.rs crates/sim/src/comm.rs crates/sim/src/engine.rs crates/sim/src/error.rs crates/sim/src/events.rs crates/sim/src/fault.rs crates/sim/src/metrics.rs crates/sim/src/model_spec.rs crates/sim/src/server.rs crates/sim/src/topology.rs crates/sim/src/upload.rs

crates/sim/src/lib.rs:
crates/sim/src/client.rs:
crates/sim/src/comm.rs:
crates/sim/src/engine.rs:
crates/sim/src/error.rs:
crates/sim/src/events.rs:
crates/sim/src/fault.rs:
crates/sim/src/metrics.rs:
crates/sim/src/model_spec.rs:
crates/sim/src/server.rs:
crates/sim/src/topology.rs:
crates/sim/src/upload.rs:
