/root/repo/target/debug/deps/fig4-46c1bffaecd31d08.d: crates/bench/src/bin/fig4.rs

/root/repo/target/debug/deps/fig4-46c1bffaecd31d08: crates/bench/src/bin/fig4.rs

crates/bench/src/bin/fig4.rs:
