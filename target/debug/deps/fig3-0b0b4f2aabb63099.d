/root/repo/target/debug/deps/fig3-0b0b4f2aabb63099.d: crates/bench/src/bin/fig3.rs

/root/repo/target/debug/deps/fig3-0b0b4f2aabb63099: crates/bench/src/bin/fig3.rs

crates/bench/src/bin/fig3.rs:
