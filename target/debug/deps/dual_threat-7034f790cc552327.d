/root/repo/target/debug/deps/dual_threat-7034f790cc552327.d: tests/dual_threat.rs

/root/repo/target/debug/deps/dual_threat-7034f790cc552327: tests/dual_threat.rs

tests/dual_threat.rs:
