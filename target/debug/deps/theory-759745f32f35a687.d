/root/repo/target/debug/deps/theory-759745f32f35a687.d: crates/bench/src/bin/theory.rs Cargo.toml

/root/repo/target/debug/deps/libtheory-759745f32f35a687.rmeta: crates/bench/src/bin/theory.rs Cargo.toml

crates/bench/src/bin/theory.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
