/root/repo/target/debug/deps/dual-080e113b577bf2cf.d: crates/bench/src/bin/dual.rs

/root/repo/target/debug/deps/dual-080e113b577bf2cf: crates/bench/src/bin/dual.rs

crates/bench/src/bin/dual.rs:
