/root/repo/target/debug/deps/checkpointing-feb8b76a00d4de4a.d: tests/checkpointing.rs

/root/repo/target/debug/deps/checkpointing-feb8b76a00d4de4a: tests/checkpointing.rs

tests/checkpointing.rs:
