/root/repo/target/debug/deps/theory_proptests-f1659bf352fb8e5a.d: crates/core/tests/theory_proptests.rs

/root/repo/target/debug/deps/theory_proptests-f1659bf352fb8e5a: crates/core/tests/theory_proptests.rs

crates/core/tests/theory_proptests.rs:
