/root/repo/target/debug/deps/pipeline-090284f0efe9dd4d.d: crates/nn/tests/pipeline.rs

/root/repo/target/debug/deps/pipeline-090284f0efe9dd4d: crates/nn/tests/pipeline.rs

crates/nn/tests/pipeline.rs:
