/root/repo/target/debug/deps/checkpointing-fd1efce6a4fbf7b5.d: tests/checkpointing.rs Cargo.toml

/root/repo/target/debug/deps/libcheckpointing-fd1efce6a4fbf7b5.rmeta: tests/checkpointing.rs Cargo.toml

tests/checkpointing.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
