/root/repo/target/debug/deps/fedms_attacks-8230ea06b17fa2a3.d: crates/attacks/src/lib.rs crates/attacks/src/adaptive.rs crates/attacks/src/backward.rs crates/attacks/src/client.rs crates/attacks/src/context.rs crates/attacks/src/equivocation.rs crates/attacks/src/error.rs crates/attacks/src/kind.rs crates/attacks/src/noise.rs crates/attacks/src/random.rs crates/attacks/src/safeguard.rs crates/attacks/src/signflip.rs crates/attacks/src/stealth.rs

/root/repo/target/debug/deps/fedms_attacks-8230ea06b17fa2a3: crates/attacks/src/lib.rs crates/attacks/src/adaptive.rs crates/attacks/src/backward.rs crates/attacks/src/client.rs crates/attacks/src/context.rs crates/attacks/src/equivocation.rs crates/attacks/src/error.rs crates/attacks/src/kind.rs crates/attacks/src/noise.rs crates/attacks/src/random.rs crates/attacks/src/safeguard.rs crates/attacks/src/signflip.rs crates/attacks/src/stealth.rs

crates/attacks/src/lib.rs:
crates/attacks/src/adaptive.rs:
crates/attacks/src/backward.rs:
crates/attacks/src/client.rs:
crates/attacks/src/context.rs:
crates/attacks/src/equivocation.rs:
crates/attacks/src/error.rs:
crates/attacks/src/kind.rs:
crates/attacks/src/noise.rs:
crates/attacks/src/random.rs:
crates/attacks/src/safeguard.rs:
crates/attacks/src/signflip.rs:
crates/attacks/src/stealth.rs:
