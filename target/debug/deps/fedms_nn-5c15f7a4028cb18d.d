/root/repo/target/debug/deps/fedms_nn-5c15f7a4028cb18d.d: crates/nn/src/lib.rs crates/nn/src/convex.rs crates/nn/src/error.rs crates/nn/src/gradcheck.rs crates/nn/src/layer.rs crates/nn/src/layers/mod.rs crates/nn/src/layers/activation.rs crates/nn/src/layers/avgpool.rs crates/nn/src/layers/batchnorm.rs crates/nn/src/layers/conv.rs crates/nn/src/layers/dropout.rs crates/nn/src/layers/maxpool.rs crates/nn/src/layers/linear.rs crates/nn/src/layers/pool.rs crates/nn/src/layers/sequential.rs crates/nn/src/loss.rs crates/nn/src/models.rs crates/nn/src/net.rs crates/nn/src/sgd.rs Cargo.toml

/root/repo/target/debug/deps/libfedms_nn-5c15f7a4028cb18d.rmeta: crates/nn/src/lib.rs crates/nn/src/convex.rs crates/nn/src/error.rs crates/nn/src/gradcheck.rs crates/nn/src/layer.rs crates/nn/src/layers/mod.rs crates/nn/src/layers/activation.rs crates/nn/src/layers/avgpool.rs crates/nn/src/layers/batchnorm.rs crates/nn/src/layers/conv.rs crates/nn/src/layers/dropout.rs crates/nn/src/layers/maxpool.rs crates/nn/src/layers/linear.rs crates/nn/src/layers/pool.rs crates/nn/src/layers/sequential.rs crates/nn/src/loss.rs crates/nn/src/models.rs crates/nn/src/net.rs crates/nn/src/sgd.rs Cargo.toml

crates/nn/src/lib.rs:
crates/nn/src/convex.rs:
crates/nn/src/error.rs:
crates/nn/src/gradcheck.rs:
crates/nn/src/layer.rs:
crates/nn/src/layers/mod.rs:
crates/nn/src/layers/activation.rs:
crates/nn/src/layers/avgpool.rs:
crates/nn/src/layers/batchnorm.rs:
crates/nn/src/layers/conv.rs:
crates/nn/src/layers/dropout.rs:
crates/nn/src/layers/maxpool.rs:
crates/nn/src/layers/linear.rs:
crates/nn/src/layers/pool.rs:
crates/nn/src/layers/sequential.rs:
crates/nn/src/loss.rs:
crates/nn/src/models.rs:
crates/nn/src/net.rs:
crates/nn/src/sgd.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
