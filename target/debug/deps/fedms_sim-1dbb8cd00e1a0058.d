/root/repo/target/debug/deps/fedms_sim-1dbb8cd00e1a0058.d: crates/sim/src/lib.rs crates/sim/src/client.rs crates/sim/src/comm.rs crates/sim/src/engine.rs crates/sim/src/error.rs crates/sim/src/events.rs crates/sim/src/metrics.rs crates/sim/src/model_spec.rs crates/sim/src/server.rs crates/sim/src/topology.rs crates/sim/src/upload.rs

/root/repo/target/debug/deps/fedms_sim-1dbb8cd00e1a0058: crates/sim/src/lib.rs crates/sim/src/client.rs crates/sim/src/comm.rs crates/sim/src/engine.rs crates/sim/src/error.rs crates/sim/src/events.rs crates/sim/src/metrics.rs crates/sim/src/model_spec.rs crates/sim/src/server.rs crates/sim/src/topology.rs crates/sim/src/upload.rs

crates/sim/src/lib.rs:
crates/sim/src/client.rs:
crates/sim/src/comm.rs:
crates/sim/src/engine.rs:
crates/sim/src/error.rs:
crates/sim/src/events.rs:
crates/sim/src/metrics.rs:
crates/sim/src/model_spec.rs:
crates/sim/src/server.rs:
crates/sim/src/topology.rs:
crates/sim/src/upload.rs:
