/root/repo/target/debug/deps/fig2-0a51587de4575c85.d: crates/bench/src/bin/fig2.rs Cargo.toml

/root/repo/target/debug/deps/libfig2-0a51587de4575c85.rmeta: crates/bench/src/bin/fig2.rs Cargo.toml

crates/bench/src/bin/fig2.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
