/root/repo/target/debug/deps/comm-93fb51e3c2a3f753.d: crates/bench/src/bin/comm.rs Cargo.toml

/root/repo/target/debug/deps/libcomm-93fb51e3c2a3f753.rmeta: crates/bench/src/bin/comm.rs Cargo.toml

crates/bench/src/bin/comm.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
