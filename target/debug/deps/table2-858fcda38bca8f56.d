/root/repo/target/debug/deps/table2-858fcda38bca8f56.d: crates/bench/src/bin/table2.rs

/root/repo/target/debug/deps/table2-858fcda38bca8f56: crates/bench/src/bin/table2.rs

crates/bench/src/bin/table2.rs:
