/root/repo/target/debug/deps/proptests-f92be061a5db6763.d: crates/aggregation/tests/proptests.rs Cargo.toml

/root/repo/target/debug/deps/libproptests-f92be061a5db6763.rmeta: crates/aggregation/tests/proptests.rs Cargo.toml

crates/aggregation/tests/proptests.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
