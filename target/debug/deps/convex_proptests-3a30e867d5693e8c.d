/root/repo/target/debug/deps/convex_proptests-3a30e867d5693e8c.d: crates/nn/tests/convex_proptests.rs

/root/repo/target/debug/deps/convex_proptests-3a30e867d5693e8c: crates/nn/tests/convex_proptests.rs

crates/nn/tests/convex_proptests.rs:
