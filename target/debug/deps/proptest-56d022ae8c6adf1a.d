/root/repo/target/debug/deps/proptest-56d022ae8c6adf1a.d: vendor/proptest/src/lib.rs

/root/repo/target/debug/deps/libproptest-56d022ae8c6adf1a.rmeta: vendor/proptest/src/lib.rs

vendor/proptest/src/lib.rs:
