/root/repo/target/debug/deps/stealth-89f623aebc67fa8d.d: crates/bench/src/bin/stealth.rs

/root/repo/target/debug/deps/stealth-89f623aebc67fa8d: crates/bench/src/bin/stealth.rs

crates/bench/src/bin/stealth.rs:
