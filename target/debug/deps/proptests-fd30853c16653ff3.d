/root/repo/target/debug/deps/proptests-fd30853c16653ff3.d: crates/sim/tests/proptests.rs

/root/repo/target/debug/deps/proptests-fd30853c16653ff3: crates/sim/tests/proptests.rs

crates/sim/tests/proptests.rs:
