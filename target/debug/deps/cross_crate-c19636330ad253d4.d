/root/repo/target/debug/deps/cross_crate-c19636330ad253d4.d: tests/cross_crate.rs

/root/repo/target/debug/deps/cross_crate-c19636330ad253d4: tests/cross_crate.rs

tests/cross_crate.rs:
