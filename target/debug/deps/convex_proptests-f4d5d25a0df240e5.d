/root/repo/target/debug/deps/convex_proptests-f4d5d25a0df240e5.d: crates/nn/tests/convex_proptests.rs Cargo.toml

/root/repo/target/debug/deps/libconvex_proptests-f4d5d25a0df240e5.rmeta: crates/nn/tests/convex_proptests.rs Cargo.toml

crates/nn/tests/convex_proptests.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
