/root/repo/target/debug/deps/proptests-dc1557ae7e3d885d.d: crates/aggregation/tests/proptests.rs

/root/repo/target/debug/deps/proptests-dc1557ae7e3d885d: crates/aggregation/tests/proptests.rs

crates/aggregation/tests/proptests.rs:
