/root/repo/target/debug/deps/end_to_end-019e2b878763e51f.d: tests/end_to_end.rs

/root/repo/target/debug/deps/end_to_end-019e2b878763e51f: tests/end_to_end.rs

tests/end_to_end.rs:
