/root/repo/target/debug/deps/comm-dcb8c34b49d8e9df.d: crates/bench/src/bin/comm.rs

/root/repo/target/debug/deps/comm-dcb8c34b49d8e9df: crates/bench/src/bin/comm.rs

crates/bench/src/bin/comm.rs:
