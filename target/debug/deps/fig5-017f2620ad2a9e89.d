/root/repo/target/debug/deps/fig5-017f2620ad2a9e89.d: crates/bench/src/bin/fig5.rs Cargo.toml

/root/repo/target/debug/deps/libfig5-017f2620ad2a9e89.rmeta: crates/bench/src/bin/fig5.rs Cargo.toml

crates/bench/src/bin/fig5.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
