/root/repo/target/debug/deps/fedms_data-e313df2dfad270cc.d: crates/data/src/lib.rs crates/data/src/augment.rs crates/data/src/dataset.rs crates/data/src/error.rs crates/data/src/histogram.rs crates/data/src/partition.rs crates/data/src/sampler.rs crates/data/src/sensor.rs crates/data/src/synth.rs

/root/repo/target/debug/deps/libfedms_data-e313df2dfad270cc.rlib: crates/data/src/lib.rs crates/data/src/augment.rs crates/data/src/dataset.rs crates/data/src/error.rs crates/data/src/histogram.rs crates/data/src/partition.rs crates/data/src/sampler.rs crates/data/src/sensor.rs crates/data/src/synth.rs

/root/repo/target/debug/deps/libfedms_data-e313df2dfad270cc.rmeta: crates/data/src/lib.rs crates/data/src/augment.rs crates/data/src/dataset.rs crates/data/src/error.rs crates/data/src/histogram.rs crates/data/src/partition.rs crates/data/src/sampler.rs crates/data/src/sensor.rs crates/data/src/synth.rs

crates/data/src/lib.rs:
crates/data/src/augment.rs:
crates/data/src/dataset.rs:
crates/data/src/error.rs:
crates/data/src/histogram.rs:
crates/data/src/partition.rs:
crates/data/src/sampler.rs:
crates/data/src/sensor.rs:
crates/data/src/synth.rs:
