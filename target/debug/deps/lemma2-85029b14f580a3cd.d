/root/repo/target/debug/deps/lemma2-85029b14f580a3cd.d: crates/bench/src/bin/lemma2.rs

/root/repo/target/debug/deps/lemma2-85029b14f580a3cd: crates/bench/src/bin/lemma2.rs

crates/bench/src/bin/lemma2.rs:
