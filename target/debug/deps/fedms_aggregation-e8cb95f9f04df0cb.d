/root/repo/target/debug/deps/fedms_aggregation-e8cb95f9f04df0cb.d: crates/aggregation/src/lib.rs crates/aggregation/src/bulyan.rs crates/aggregation/src/clipping.rs crates/aggregation/src/error.rs crates/aggregation/src/geomedian.rs crates/aggregation/src/krum.rs crates/aggregation/src/mean.rs crates/aggregation/src/median.rs crates/aggregation/src/normbound.rs crates/aggregation/src/rule.rs crates/aggregation/src/trimmed.rs Cargo.toml

/root/repo/target/debug/deps/libfedms_aggregation-e8cb95f9f04df0cb.rmeta: crates/aggregation/src/lib.rs crates/aggregation/src/bulyan.rs crates/aggregation/src/clipping.rs crates/aggregation/src/error.rs crates/aggregation/src/geomedian.rs crates/aggregation/src/krum.rs crates/aggregation/src/mean.rs crates/aggregation/src/median.rs crates/aggregation/src/normbound.rs crates/aggregation/src/rule.rs crates/aggregation/src/trimmed.rs Cargo.toml

crates/aggregation/src/lib.rs:
crates/aggregation/src/bulyan.rs:
crates/aggregation/src/clipping.rs:
crates/aggregation/src/error.rs:
crates/aggregation/src/geomedian.rs:
crates/aggregation/src/krum.rs:
crates/aggregation/src/mean.rs:
crates/aggregation/src/median.rs:
crates/aggregation/src/normbound.rs:
crates/aggregation/src/rule.rs:
crates/aggregation/src/trimmed.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
