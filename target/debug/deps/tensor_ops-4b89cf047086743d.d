/root/repo/target/debug/deps/tensor_ops-4b89cf047086743d.d: crates/bench/benches/tensor_ops.rs Cargo.toml

/root/repo/target/debug/deps/libtensor_ops-4b89cf047086743d.rmeta: crates/bench/benches/tensor_ops.rs Cargo.toml

crates/bench/benches/tensor_ops.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
