/root/repo/target/debug/deps/comm-1b19f9dbe330d62e.d: crates/bench/src/bin/comm.rs

/root/repo/target/debug/deps/comm-1b19f9dbe330d62e: crates/bench/src/bin/comm.rs

crates/bench/src/bin/comm.rs:
