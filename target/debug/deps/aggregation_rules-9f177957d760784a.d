/root/repo/target/debug/deps/aggregation_rules-9f177957d760784a.d: crates/bench/benches/aggregation_rules.rs Cargo.toml

/root/repo/target/debug/deps/libaggregation_rules-9f177957d760784a.rmeta: crates/bench/benches/aggregation_rules.rs Cargo.toml

crates/bench/benches/aggregation_rules.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
