/root/repo/target/debug/deps/dual-9245ae6ef62d99ae.d: crates/bench/src/bin/dual.rs Cargo.toml

/root/repo/target/debug/deps/libdual-9245ae6ef62d99ae.rmeta: crates/bench/src/bin/dual.rs Cargo.toml

crates/bench/src/bin/dual.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
