/root/repo/target/debug/deps/lemma2-00edfeb715238318.d: crates/bench/src/bin/lemma2.rs Cargo.toml

/root/repo/target/debug/deps/liblemma2-00edfeb715238318.rmeta: crates/bench/src/bin/lemma2.rs Cargo.toml

crates/bench/src/bin/lemma2.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
