/root/repo/target/debug/deps/fedms-103fae1146556d08.d: src/main.rs Cargo.toml

/root/repo/target/debug/deps/libfedms-103fae1146556d08.rmeta: src/main.rs Cargo.toml

src/main.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
