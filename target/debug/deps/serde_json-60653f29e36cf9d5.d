/root/repo/target/debug/deps/serde_json-60653f29e36cf9d5.d: vendor/serde_json/src/lib.rs

/root/repo/target/debug/deps/libserde_json-60653f29e36cf9d5.rmeta: vendor/serde_json/src/lib.rs

vendor/serde_json/src/lib.rs:
