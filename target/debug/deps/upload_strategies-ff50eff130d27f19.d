/root/repo/target/debug/deps/upload_strategies-ff50eff130d27f19.d: crates/bench/benches/upload_strategies.rs Cargo.toml

/root/repo/target/debug/deps/libupload_strategies-ff50eff130d27f19.rmeta: crates/bench/benches/upload_strategies.rs Cargo.toml

crates/bench/benches/upload_strategies.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
