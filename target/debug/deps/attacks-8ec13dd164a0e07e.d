/root/repo/target/debug/deps/attacks-8ec13dd164a0e07e.d: crates/bench/benches/attacks.rs Cargo.toml

/root/repo/target/debug/deps/libattacks-8ec13dd164a0e07e.rmeta: crates/bench/benches/attacks.rs Cargo.toml

crates/bench/benches/attacks.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
