/root/repo/target/debug/deps/fedms_data-99c2aec4e64c7e53.d: crates/data/src/lib.rs crates/data/src/augment.rs crates/data/src/dataset.rs crates/data/src/error.rs crates/data/src/histogram.rs crates/data/src/partition.rs crates/data/src/sampler.rs crates/data/src/sensor.rs crates/data/src/synth.rs Cargo.toml

/root/repo/target/debug/deps/libfedms_data-99c2aec4e64c7e53.rmeta: crates/data/src/lib.rs crates/data/src/augment.rs crates/data/src/dataset.rs crates/data/src/error.rs crates/data/src/histogram.rs crates/data/src/partition.rs crates/data/src/sampler.rs crates/data/src/sensor.rs crates/data/src/synth.rs Cargo.toml

crates/data/src/lib.rs:
crates/data/src/augment.rs:
crates/data/src/dataset.rs:
crates/data/src/error.rs:
crates/data/src/histogram.rs:
crates/data/src/partition.rs:
crates/data/src/sampler.rs:
crates/data/src/sensor.rs:
crates/data/src/synth.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
