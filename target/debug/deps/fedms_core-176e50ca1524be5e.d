/root/repo/target/debug/deps/fedms_core-176e50ca1524be5e.d: crates/core/src/lib.rs crates/core/src/config.rs crates/core/src/error.rs crates/core/src/filter.rs crates/core/src/theory.rs

/root/repo/target/debug/deps/fedms_core-176e50ca1524be5e: crates/core/src/lib.rs crates/core/src/config.rs crates/core/src/error.rs crates/core/src/filter.rs crates/core/src/theory.rs

crates/core/src/lib.rs:
crates/core/src/config.rs:
crates/core/src/error.rs:
crates/core/src/filter.rs:
crates/core/src/theory.rs:
