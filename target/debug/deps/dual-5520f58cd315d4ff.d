/root/repo/target/debug/deps/dual-5520f58cd315d4ff.d: crates/bench/src/bin/dual.rs

/root/repo/target/debug/deps/dual-5520f58cd315d4ff: crates/bench/src/bin/dual.rs

crates/bench/src/bin/dual.rs:
