/root/repo/target/debug/deps/theory-62dc0476648ae136.d: crates/bench/src/bin/theory.rs

/root/repo/target/debug/deps/theory-62dc0476648ae136: crates/bench/src/bin/theory.rs

crates/bench/src/bin/theory.rs:
