/root/repo/target/debug/deps/fig3-6a7a6e6d51ebe5e6.d: crates/bench/src/bin/fig3.rs

/root/repo/target/debug/deps/fig3-6a7a6e6d51ebe5e6: crates/bench/src/bin/fig3.rs

crates/bench/src/bin/fig3.rs:
