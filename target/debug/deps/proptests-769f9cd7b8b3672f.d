/root/repo/target/debug/deps/proptests-769f9cd7b8b3672f.d: crates/tensor/tests/proptests.rs Cargo.toml

/root/repo/target/debug/deps/libproptests-769f9cd7b8b3672f.rmeta: crates/tensor/tests/proptests.rs Cargo.toml

crates/tensor/tests/proptests.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
