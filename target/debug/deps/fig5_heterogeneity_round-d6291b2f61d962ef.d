/root/repo/target/debug/deps/fig5_heterogeneity_round-d6291b2f61d962ef.d: crates/bench/benches/fig5_heterogeneity_round.rs Cargo.toml

/root/repo/target/debug/deps/libfig5_heterogeneity_round-d6291b2f61d962ef.rmeta: crates/bench/benches/fig5_heterogeneity_round.rs Cargo.toml

crates/bench/benches/fig5_heterogeneity_round.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
