/root/repo/target/debug/deps/theory-fbf6e23e1b1fb171.d: crates/bench/src/bin/theory.rs

/root/repo/target/debug/deps/theory-fbf6e23e1b1fb171: crates/bench/src/bin/theory.rs

crates/bench/src/bin/theory.rs:
