/root/repo/target/debug/deps/pipeline-28689145f990661f.d: crates/nn/tests/pipeline.rs Cargo.toml

/root/repo/target/debug/deps/libpipeline-28689145f990661f.rmeta: crates/nn/tests/pipeline.rs Cargo.toml

crates/nn/tests/pipeline.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
