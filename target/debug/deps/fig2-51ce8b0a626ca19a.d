/root/repo/target/debug/deps/fig2-51ce8b0a626ca19a.d: crates/bench/src/bin/fig2.rs

/root/repo/target/debug/deps/fig2-51ce8b0a626ca19a: crates/bench/src/bin/fig2.rs

crates/bench/src/bin/fig2.rs:
