/root/repo/target/debug/deps/proptests-8ad3212410ecdb45.d: crates/tensor/tests/proptests.rs

/root/repo/target/debug/deps/proptests-8ad3212410ecdb45: crates/tensor/tests/proptests.rs

crates/tensor/tests/proptests.rs:
