/root/repo/target/debug/deps/training_round-cf0ded0fc1fa91bc.d: crates/bench/benches/training_round.rs Cargo.toml

/root/repo/target/debug/deps/libtraining_round-cf0ded0fc1fa91bc.rmeta: crates/bench/benches/training_round.rs Cargo.toml

crates/bench/benches/training_round.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
