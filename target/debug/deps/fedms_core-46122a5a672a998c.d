/root/repo/target/debug/deps/fedms_core-46122a5a672a998c.d: crates/core/src/lib.rs crates/core/src/config.rs crates/core/src/error.rs crates/core/src/filter.rs crates/core/src/theory.rs Cargo.toml

/root/repo/target/debug/deps/libfedms_core-46122a5a672a998c.rmeta: crates/core/src/lib.rs crates/core/src/config.rs crates/core/src/error.rs crates/core/src/filter.rs crates/core/src/theory.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/config.rs:
crates/core/src/error.rs:
crates/core/src/filter.rs:
crates/core/src/theory.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
