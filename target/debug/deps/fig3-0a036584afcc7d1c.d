/root/repo/target/debug/deps/fig3-0a036584afcc7d1c.d: crates/bench/src/bin/fig3.rs Cargo.toml

/root/repo/target/debug/deps/libfig3-0a036584afcc7d1c.rmeta: crates/bench/src/bin/fig3.rs Cargo.toml

crates/bench/src/bin/fig3.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
