/root/repo/target/debug/deps/fedms_sim-9874a4132cef24df.d: crates/sim/src/lib.rs crates/sim/src/client.rs crates/sim/src/comm.rs crates/sim/src/engine.rs crates/sim/src/error.rs crates/sim/src/events.rs crates/sim/src/fault.rs crates/sim/src/metrics.rs crates/sim/src/model_spec.rs crates/sim/src/server.rs crates/sim/src/topology.rs crates/sim/src/upload.rs Cargo.toml

/root/repo/target/debug/deps/libfedms_sim-9874a4132cef24df.rmeta: crates/sim/src/lib.rs crates/sim/src/client.rs crates/sim/src/comm.rs crates/sim/src/engine.rs crates/sim/src/error.rs crates/sim/src/events.rs crates/sim/src/fault.rs crates/sim/src/metrics.rs crates/sim/src/model_spec.rs crates/sim/src/server.rs crates/sim/src/topology.rs crates/sim/src/upload.rs Cargo.toml

crates/sim/src/lib.rs:
crates/sim/src/client.rs:
crates/sim/src/comm.rs:
crates/sim/src/engine.rs:
crates/sim/src/error.rs:
crates/sim/src/events.rs:
crates/sim/src/fault.rs:
crates/sim/src/metrics.rs:
crates/sim/src/model_spec.rs:
crates/sim/src/server.rs:
crates/sim/src/topology.rs:
crates/sim/src/upload.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
