/root/repo/target/debug/deps/theory-898b845ebcf68a08.d: crates/bench/src/bin/theory.rs Cargo.toml

/root/repo/target/debug/deps/libtheory-898b845ebcf68a08.rmeta: crates/bench/src/bin/theory.rs Cargo.toml

crates/bench/src/bin/theory.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
