/root/repo/target/debug/deps/fedms_core-8929d05835bbd3a6.d: crates/core/src/lib.rs crates/core/src/config.rs crates/core/src/error.rs crates/core/src/filter.rs crates/core/src/theory.rs

/root/repo/target/debug/deps/libfedms_core-8929d05835bbd3a6.rlib: crates/core/src/lib.rs crates/core/src/config.rs crates/core/src/error.rs crates/core/src/filter.rs crates/core/src/theory.rs

/root/repo/target/debug/deps/libfedms_core-8929d05835bbd3a6.rmeta: crates/core/src/lib.rs crates/core/src/config.rs crates/core/src/error.rs crates/core/src/filter.rs crates/core/src/theory.rs

crates/core/src/lib.rs:
crates/core/src/config.rs:
crates/core/src/error.rs:
crates/core/src/filter.rs:
crates/core/src/theory.rs:
