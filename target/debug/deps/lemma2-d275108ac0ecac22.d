/root/repo/target/debug/deps/lemma2-d275108ac0ecac22.d: crates/bench/src/bin/lemma2.rs

/root/repo/target/debug/deps/lemma2-d275108ac0ecac22: crates/bench/src/bin/lemma2.rs

crates/bench/src/bin/lemma2.rs:
