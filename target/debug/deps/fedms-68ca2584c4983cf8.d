/root/repo/target/debug/deps/fedms-68ca2584c4983cf8.d: src/main.rs Cargo.toml

/root/repo/target/debug/deps/libfedms-68ca2584c4983cf8.rmeta: src/main.rs Cargo.toml

src/main.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
