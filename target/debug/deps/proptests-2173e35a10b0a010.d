/root/repo/target/debug/deps/proptests-2173e35a10b0a010.d: crates/sim/tests/proptests.rs Cargo.toml

/root/repo/target/debug/deps/libproptests-2173e35a10b0a010.rmeta: crates/sim/tests/proptests.rs Cargo.toml

crates/sim/tests/proptests.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
