/root/repo/target/debug/deps/rand-5b3db96421ebb9ce.d: vendor/rand/src/lib.rs

/root/repo/target/debug/deps/librand-5b3db96421ebb9ce.rmeta: vendor/rand/src/lib.rs

vendor/rand/src/lib.rs:
