/root/repo/target/debug/deps/proptest-c9843c7b8371da7c.d: vendor/proptest/src/lib.rs

/root/repo/target/debug/deps/libproptest-c9843c7b8371da7c.rlib: vendor/proptest/src/lib.rs

/root/repo/target/debug/deps/libproptest-c9843c7b8371da7c.rmeta: vendor/proptest/src/lib.rs

vendor/proptest/src/lib.rs:
