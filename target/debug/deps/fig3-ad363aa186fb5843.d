/root/repo/target/debug/deps/fig3-ad363aa186fb5843.d: crates/bench/src/bin/fig3.rs Cargo.toml

/root/repo/target/debug/deps/libfig3-ad363aa186fb5843.rmeta: crates/bench/src/bin/fig3.rs Cargo.toml

crates/bench/src/bin/fig3.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
