/root/repo/target/debug/deps/cross_crate-eac71f4c7134f590.d: tests/cross_crate.rs Cargo.toml

/root/repo/target/debug/deps/libcross_crate-eac71f4c7134f590.rmeta: tests/cross_crate.rs Cargo.toml

tests/cross_crate.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
