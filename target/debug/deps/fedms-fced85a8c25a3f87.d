/root/repo/target/debug/deps/fedms-fced85a8c25a3f87.d: src/lib.rs

/root/repo/target/debug/deps/libfedms-fced85a8c25a3f87.rlib: src/lib.rs

/root/repo/target/debug/deps/libfedms-fced85a8c25a3f87.rmeta: src/lib.rs

src/lib.rs:
