/root/repo/target/debug/deps/stealth-8171f6c6ced5a5bc.d: crates/bench/src/bin/stealth.rs Cargo.toml

/root/repo/target/debug/deps/libstealth-8171f6c6ced5a5bc.rmeta: crates/bench/src/bin/stealth.rs Cargo.toml

crates/bench/src/bin/stealth.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
