/root/repo/target/debug/deps/fig3_epsilon_round-5c137074888a9161.d: crates/bench/benches/fig3_epsilon_round.rs Cargo.toml

/root/repo/target/debug/deps/libfig3_epsilon_round-5c137074888a9161.rmeta: crates/bench/benches/fig3_epsilon_round.rs Cargo.toml

crates/bench/benches/fig3_epsilon_round.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
