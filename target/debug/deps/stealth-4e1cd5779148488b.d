/root/repo/target/debug/deps/stealth-4e1cd5779148488b.d: crates/bench/src/bin/stealth.rs

/root/repo/target/debug/deps/stealth-4e1cd5779148488b: crates/bench/src/bin/stealth.rs

crates/bench/src/bin/stealth.rs:
