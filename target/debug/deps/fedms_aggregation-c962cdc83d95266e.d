/root/repo/target/debug/deps/fedms_aggregation-c962cdc83d95266e.d: crates/aggregation/src/lib.rs crates/aggregation/src/bulyan.rs crates/aggregation/src/clipping.rs crates/aggregation/src/error.rs crates/aggregation/src/geomedian.rs crates/aggregation/src/krum.rs crates/aggregation/src/mean.rs crates/aggregation/src/median.rs crates/aggregation/src/normbound.rs crates/aggregation/src/rule.rs crates/aggregation/src/trimmed.rs

/root/repo/target/debug/deps/fedms_aggregation-c962cdc83d95266e: crates/aggregation/src/lib.rs crates/aggregation/src/bulyan.rs crates/aggregation/src/clipping.rs crates/aggregation/src/error.rs crates/aggregation/src/geomedian.rs crates/aggregation/src/krum.rs crates/aggregation/src/mean.rs crates/aggregation/src/median.rs crates/aggregation/src/normbound.rs crates/aggregation/src/rule.rs crates/aggregation/src/trimmed.rs

crates/aggregation/src/lib.rs:
crates/aggregation/src/bulyan.rs:
crates/aggregation/src/clipping.rs:
crates/aggregation/src/error.rs:
crates/aggregation/src/geomedian.rs:
crates/aggregation/src/krum.rs:
crates/aggregation/src/mean.rs:
crates/aggregation/src/median.rs:
crates/aggregation/src/normbound.rs:
crates/aggregation/src/rule.rs:
crates/aggregation/src/trimmed.rs:
