/root/repo/target/debug/deps/fedms_bench-db16af42bb98d428.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libfedms_bench-db16af42bb98d428.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
