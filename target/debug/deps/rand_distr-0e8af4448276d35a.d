/root/repo/target/debug/deps/rand_distr-0e8af4448276d35a.d: vendor/rand_distr/src/lib.rs

/root/repo/target/debug/deps/librand_distr-0e8af4448276d35a.rmeta: vendor/rand_distr/src/lib.rs

vendor/rand_distr/src/lib.rs:
