/root/repo/target/debug/deps/determinism-789d20f198a3c339.d: tests/determinism.rs

/root/repo/target/debug/deps/determinism-789d20f198a3c339: tests/determinism.rs

tests/determinism.rs:
