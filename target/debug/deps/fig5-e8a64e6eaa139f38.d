/root/repo/target/debug/deps/fig5-e8a64e6eaa139f38.d: crates/bench/src/bin/fig5.rs Cargo.toml

/root/repo/target/debug/deps/libfig5-e8a64e6eaa139f38.rmeta: crates/bench/src/bin/fig5.rs Cargo.toml

crates/bench/src/bin/fig5.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
