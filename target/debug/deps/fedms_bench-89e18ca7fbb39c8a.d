/root/repo/target/debug/deps/fedms_bench-89e18ca7fbb39c8a.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/fedms_bench-89e18ca7fbb39c8a: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
