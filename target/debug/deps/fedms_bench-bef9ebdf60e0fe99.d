/root/repo/target/debug/deps/fedms_bench-bef9ebdf60e0fe99.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libfedms_bench-bef9ebdf60e0fe99.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libfedms_bench-bef9ebdf60e0fe99.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
