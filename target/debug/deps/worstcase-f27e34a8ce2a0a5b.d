/root/repo/target/debug/deps/worstcase-f27e34a8ce2a0a5b.d: crates/bench/src/bin/worstcase.rs

/root/repo/target/debug/deps/worstcase-f27e34a8ce2a0a5b: crates/bench/src/bin/worstcase.rs

crates/bench/src/bin/worstcase.rs:
