/root/repo/target/debug/deps/fedms_attacks-4a4a4abe48a80274.d: crates/attacks/src/lib.rs crates/attacks/src/adaptive.rs crates/attacks/src/backward.rs crates/attacks/src/client.rs crates/attacks/src/context.rs crates/attacks/src/equivocation.rs crates/attacks/src/error.rs crates/attacks/src/kind.rs crates/attacks/src/noise.rs crates/attacks/src/random.rs crates/attacks/src/safeguard.rs crates/attacks/src/signflip.rs crates/attacks/src/stealth.rs

/root/repo/target/debug/deps/libfedms_attacks-4a4a4abe48a80274.rlib: crates/attacks/src/lib.rs crates/attacks/src/adaptive.rs crates/attacks/src/backward.rs crates/attacks/src/client.rs crates/attacks/src/context.rs crates/attacks/src/equivocation.rs crates/attacks/src/error.rs crates/attacks/src/kind.rs crates/attacks/src/noise.rs crates/attacks/src/random.rs crates/attacks/src/safeguard.rs crates/attacks/src/signflip.rs crates/attacks/src/stealth.rs

/root/repo/target/debug/deps/libfedms_attacks-4a4a4abe48a80274.rmeta: crates/attacks/src/lib.rs crates/attacks/src/adaptive.rs crates/attacks/src/backward.rs crates/attacks/src/client.rs crates/attacks/src/context.rs crates/attacks/src/equivocation.rs crates/attacks/src/error.rs crates/attacks/src/kind.rs crates/attacks/src/noise.rs crates/attacks/src/random.rs crates/attacks/src/safeguard.rs crates/attacks/src/signflip.rs crates/attacks/src/stealth.rs

crates/attacks/src/lib.rs:
crates/attacks/src/adaptive.rs:
crates/attacks/src/backward.rs:
crates/attacks/src/client.rs:
crates/attacks/src/context.rs:
crates/attacks/src/equivocation.rs:
crates/attacks/src/error.rs:
crates/attacks/src/kind.rs:
crates/attacks/src/noise.rs:
crates/attacks/src/random.rs:
crates/attacks/src/safeguard.rs:
crates/attacks/src/signflip.rs:
crates/attacks/src/stealth.rs:
