/root/repo/target/debug/deps/proptests-e582814a0bc9519f.d: crates/data/tests/proptests.rs Cargo.toml

/root/repo/target/debug/deps/libproptests-e582814a0bc9519f.rmeta: crates/data/tests/proptests.rs Cargo.toml

crates/data/tests/proptests.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
