/root/repo/target/debug/deps/fedms-405dfbd55386a6ad.d: src/lib.rs

/root/repo/target/debug/deps/fedms-405dfbd55386a6ad: src/lib.rs

src/lib.rs:
