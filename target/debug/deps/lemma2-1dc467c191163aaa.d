/root/repo/target/debug/deps/lemma2-1dc467c191163aaa.d: crates/bench/src/bin/lemma2.rs Cargo.toml

/root/repo/target/debug/deps/liblemma2-1dc467c191163aaa.rmeta: crates/bench/src/bin/lemma2.rs Cargo.toml

crates/bench/src/bin/lemma2.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
