/root/repo/target/debug/deps/proptests-4a49420562f040dc.d: crates/attacks/tests/proptests.rs

/root/repo/target/debug/deps/proptests-4a49420562f040dc: crates/attacks/tests/proptests.rs

crates/attacks/tests/proptests.rs:
