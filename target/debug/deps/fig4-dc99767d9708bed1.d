/root/repo/target/debug/deps/fig4-dc99767d9708bed1.d: crates/bench/src/bin/fig4.rs Cargo.toml

/root/repo/target/debug/deps/libfig4-dc99767d9708bed1.rmeta: crates/bench/src/bin/fig4.rs Cargo.toml

crates/bench/src/bin/fig4.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
