/root/repo/target/debug/deps/fedms_bench-185dff0c3bfd2d05.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libfedms_bench-185dff0c3bfd2d05.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
