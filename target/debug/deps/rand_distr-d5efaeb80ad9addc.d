/root/repo/target/debug/deps/rand_distr-d5efaeb80ad9addc.d: vendor/rand_distr/src/lib.rs

/root/repo/target/debug/deps/librand_distr-d5efaeb80ad9addc.rlib: vendor/rand_distr/src/lib.rs

/root/repo/target/debug/deps/librand_distr-d5efaeb80ad9addc.rmeta: vendor/rand_distr/src/lib.rs

vendor/rand_distr/src/lib.rs:
