/root/repo/target/debug/deps/fig4_partition-b12c82f1a22d171d.d: crates/bench/benches/fig4_partition.rs Cargo.toml

/root/repo/target/debug/deps/libfig4_partition-b12c82f1a22d171d.rmeta: crates/bench/benches/fig4_partition.rs Cargo.toml

crates/bench/benches/fig4_partition.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
