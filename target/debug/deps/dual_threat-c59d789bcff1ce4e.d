/root/repo/target/debug/deps/dual_threat-c59d789bcff1ce4e.d: tests/dual_threat.rs Cargo.toml

/root/repo/target/debug/deps/libdual_threat-c59d789bcff1ce4e.rmeta: tests/dual_threat.rs Cargo.toml

tests/dual_threat.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
