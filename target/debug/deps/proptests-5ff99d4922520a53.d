/root/repo/target/debug/deps/proptests-5ff99d4922520a53.d: crates/aggregation/tests/proptests.rs

/root/repo/target/debug/deps/proptests-5ff99d4922520a53: crates/aggregation/tests/proptests.rs

crates/aggregation/tests/proptests.rs:
