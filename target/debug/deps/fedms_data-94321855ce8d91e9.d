/root/repo/target/debug/deps/fedms_data-94321855ce8d91e9.d: crates/data/src/lib.rs crates/data/src/augment.rs crates/data/src/dataset.rs crates/data/src/error.rs crates/data/src/histogram.rs crates/data/src/partition.rs crates/data/src/sampler.rs crates/data/src/sensor.rs crates/data/src/synth.rs

/root/repo/target/debug/deps/fedms_data-94321855ce8d91e9: crates/data/src/lib.rs crates/data/src/augment.rs crates/data/src/dataset.rs crates/data/src/error.rs crates/data/src/histogram.rs crates/data/src/partition.rs crates/data/src/sampler.rs crates/data/src/sensor.rs crates/data/src/synth.rs

crates/data/src/lib.rs:
crates/data/src/augment.rs:
crates/data/src/dataset.rs:
crates/data/src/error.rs:
crates/data/src/histogram.rs:
crates/data/src/partition.rs:
crates/data/src/sampler.rs:
crates/data/src/sensor.rs:
crates/data/src/synth.rs:
