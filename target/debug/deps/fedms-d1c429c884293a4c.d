/root/repo/target/debug/deps/fedms-d1c429c884293a4c.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libfedms-d1c429c884293a4c.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
