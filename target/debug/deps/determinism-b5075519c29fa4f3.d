/root/repo/target/debug/deps/determinism-b5075519c29fa4f3.d: tests/determinism.rs Cargo.toml

/root/repo/target/debug/deps/libdeterminism-b5075519c29fa4f3.rmeta: tests/determinism.rs Cargo.toml

tests/determinism.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
