/root/repo/target/debug/deps/dual-8bda2938ab77c75e.d: crates/bench/src/bin/dual.rs Cargo.toml

/root/repo/target/debug/deps/libdual-8bda2938ab77c75e.rmeta: crates/bench/src/bin/dual.rs Cargo.toml

crates/bench/src/bin/dual.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
