/root/repo/target/debug/deps/worstcase-7686af65ad68d3ff.d: crates/bench/src/bin/worstcase.rs

/root/repo/target/debug/deps/worstcase-7686af65ad68d3ff: crates/bench/src/bin/worstcase.rs

crates/bench/src/bin/worstcase.rs:
