/root/repo/target/debug/deps/comm-0956079b4daebf06.d: crates/bench/src/bin/comm.rs Cargo.toml

/root/repo/target/debug/deps/libcomm-0956079b4daebf06.rmeta: crates/bench/src/bin/comm.rs Cargo.toml

crates/bench/src/bin/comm.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
