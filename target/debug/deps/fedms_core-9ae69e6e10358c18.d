/root/repo/target/debug/deps/fedms_core-9ae69e6e10358c18.d: crates/core/src/lib.rs crates/core/src/config.rs crates/core/src/error.rs crates/core/src/filter.rs crates/core/src/theory.rs Cargo.toml

/root/repo/target/debug/deps/libfedms_core-9ae69e6e10358c18.rmeta: crates/core/src/lib.rs crates/core/src/config.rs crates/core/src/error.rs crates/core/src/filter.rs crates/core/src/theory.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/config.rs:
crates/core/src/error.rs:
crates/core/src/filter.rs:
crates/core/src/theory.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
