/root/repo/target/debug/deps/fedms-47e2fa3821d7726c.d: src/main.rs

/root/repo/target/debug/deps/fedms-47e2fa3821d7726c: src/main.rs

src/main.rs:
