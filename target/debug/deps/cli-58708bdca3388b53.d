/root/repo/target/debug/deps/cli-58708bdca3388b53.d: tests/cli.rs Cargo.toml

/root/repo/target/debug/deps/libcli-58708bdca3388b53.rmeta: tests/cli.rs Cargo.toml

tests/cli.rs:
Cargo.toml:

# env-dep:CARGO_BIN_EXE_fedms=placeholder:fedms
# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
