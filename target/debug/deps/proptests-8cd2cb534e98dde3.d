/root/repo/target/debug/deps/proptests-8cd2cb534e98dde3.d: crates/attacks/tests/proptests.rs Cargo.toml

/root/repo/target/debug/deps/libproptests-8cd2cb534e98dde3.rmeta: crates/attacks/tests/proptests.rs Cargo.toml

crates/attacks/tests/proptests.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
