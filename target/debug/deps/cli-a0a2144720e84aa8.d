/root/repo/target/debug/deps/cli-a0a2144720e84aa8.d: tests/cli.rs

/root/repo/target/debug/deps/cli-a0a2144720e84aa8: tests/cli.rs

tests/cli.rs:

# env-dep:CARGO_BIN_EXE_fedms=/root/repo/target/debug/fedms
