/root/repo/target/debug/deps/theory_proptests-da6e61c687e5d1d8.d: crates/core/tests/theory_proptests.rs Cargo.toml

/root/repo/target/debug/deps/libtheory_proptests-da6e61c687e5d1d8.rmeta: crates/core/tests/theory_proptests.rs Cargo.toml

crates/core/tests/theory_proptests.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
