/root/repo/target/debug/deps/worstcase-3f7a71c898d8d37b.d: crates/bench/src/bin/worstcase.rs Cargo.toml

/root/repo/target/debug/deps/libworstcase-3f7a71c898d8d37b.rmeta: crates/bench/src/bin/worstcase.rs Cargo.toml

crates/bench/src/bin/worstcase.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
