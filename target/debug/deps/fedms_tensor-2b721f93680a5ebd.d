/root/repo/target/debug/deps/fedms_tensor-2b721f93680a5ebd.d: crates/tensor/src/lib.rs crates/tensor/src/conv.rs crates/tensor/src/error.rs crates/tensor/src/ops.rs crates/tensor/src/rng.rs crates/tensor/src/shape.rs crates/tensor/src/stats.rs crates/tensor/src/tensor.rs

/root/repo/target/debug/deps/libfedms_tensor-2b721f93680a5ebd.rlib: crates/tensor/src/lib.rs crates/tensor/src/conv.rs crates/tensor/src/error.rs crates/tensor/src/ops.rs crates/tensor/src/rng.rs crates/tensor/src/shape.rs crates/tensor/src/stats.rs crates/tensor/src/tensor.rs

/root/repo/target/debug/deps/libfedms_tensor-2b721f93680a5ebd.rmeta: crates/tensor/src/lib.rs crates/tensor/src/conv.rs crates/tensor/src/error.rs crates/tensor/src/ops.rs crates/tensor/src/rng.rs crates/tensor/src/shape.rs crates/tensor/src/stats.rs crates/tensor/src/tensor.rs

crates/tensor/src/lib.rs:
crates/tensor/src/conv.rs:
crates/tensor/src/error.rs:
crates/tensor/src/ops.rs:
crates/tensor/src/rng.rs:
crates/tensor/src/shape.rs:
crates/tensor/src/stats.rs:
crates/tensor/src/tensor.rs:
