/root/repo/target/release/deps/fedms_data-47eba38a127e28fd.d: crates/data/src/lib.rs crates/data/src/augment.rs crates/data/src/dataset.rs crates/data/src/error.rs crates/data/src/histogram.rs crates/data/src/partition.rs crates/data/src/sampler.rs crates/data/src/sensor.rs crates/data/src/synth.rs

/root/repo/target/release/deps/libfedms_data-47eba38a127e28fd.rlib: crates/data/src/lib.rs crates/data/src/augment.rs crates/data/src/dataset.rs crates/data/src/error.rs crates/data/src/histogram.rs crates/data/src/partition.rs crates/data/src/sampler.rs crates/data/src/sensor.rs crates/data/src/synth.rs

/root/repo/target/release/deps/libfedms_data-47eba38a127e28fd.rmeta: crates/data/src/lib.rs crates/data/src/augment.rs crates/data/src/dataset.rs crates/data/src/error.rs crates/data/src/histogram.rs crates/data/src/partition.rs crates/data/src/sampler.rs crates/data/src/sensor.rs crates/data/src/synth.rs

crates/data/src/lib.rs:
crates/data/src/augment.rs:
crates/data/src/dataset.rs:
crates/data/src/error.rs:
crates/data/src/histogram.rs:
crates/data/src/partition.rs:
crates/data/src/sampler.rs:
crates/data/src/sensor.rs:
crates/data/src/synth.rs:
