/root/repo/target/release/deps/fedms-18bf147a21fd0566.d: src/lib.rs

/root/repo/target/release/deps/libfedms-18bf147a21fd0566.rlib: src/lib.rs

/root/repo/target/release/deps/libfedms-18bf147a21fd0566.rmeta: src/lib.rs

src/lib.rs:
