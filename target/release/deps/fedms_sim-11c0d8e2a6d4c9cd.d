/root/repo/target/release/deps/fedms_sim-11c0d8e2a6d4c9cd.d: crates/sim/src/lib.rs crates/sim/src/client.rs crates/sim/src/comm.rs crates/sim/src/engine.rs crates/sim/src/error.rs crates/sim/src/events.rs crates/sim/src/fault.rs crates/sim/src/metrics.rs crates/sim/src/model_spec.rs crates/sim/src/server.rs crates/sim/src/topology.rs crates/sim/src/upload.rs

/root/repo/target/release/deps/libfedms_sim-11c0d8e2a6d4c9cd.rlib: crates/sim/src/lib.rs crates/sim/src/client.rs crates/sim/src/comm.rs crates/sim/src/engine.rs crates/sim/src/error.rs crates/sim/src/events.rs crates/sim/src/fault.rs crates/sim/src/metrics.rs crates/sim/src/model_spec.rs crates/sim/src/server.rs crates/sim/src/topology.rs crates/sim/src/upload.rs

/root/repo/target/release/deps/libfedms_sim-11c0d8e2a6d4c9cd.rmeta: crates/sim/src/lib.rs crates/sim/src/client.rs crates/sim/src/comm.rs crates/sim/src/engine.rs crates/sim/src/error.rs crates/sim/src/events.rs crates/sim/src/fault.rs crates/sim/src/metrics.rs crates/sim/src/model_spec.rs crates/sim/src/server.rs crates/sim/src/topology.rs crates/sim/src/upload.rs

crates/sim/src/lib.rs:
crates/sim/src/client.rs:
crates/sim/src/comm.rs:
crates/sim/src/engine.rs:
crates/sim/src/error.rs:
crates/sim/src/events.rs:
crates/sim/src/fault.rs:
crates/sim/src/metrics.rs:
crates/sim/src/model_spec.rs:
crates/sim/src/server.rs:
crates/sim/src/topology.rs:
crates/sim/src/upload.rs:
