/root/repo/target/release/deps/fedms-dcb9fbd4ea3bff5b.d: src/main.rs

/root/repo/target/release/deps/fedms-dcb9fbd4ea3bff5b: src/main.rs

src/main.rs:
