/root/repo/target/release/deps/fedms_core-a6feb96c86858702.d: crates/core/src/lib.rs crates/core/src/config.rs crates/core/src/error.rs crates/core/src/filter.rs crates/core/src/theory.rs

/root/repo/target/release/deps/libfedms_core-a6feb96c86858702.rlib: crates/core/src/lib.rs crates/core/src/config.rs crates/core/src/error.rs crates/core/src/filter.rs crates/core/src/theory.rs

/root/repo/target/release/deps/libfedms_core-a6feb96c86858702.rmeta: crates/core/src/lib.rs crates/core/src/config.rs crates/core/src/error.rs crates/core/src/filter.rs crates/core/src/theory.rs

crates/core/src/lib.rs:
crates/core/src/config.rs:
crates/core/src/error.rs:
crates/core/src/filter.rs:
crates/core/src/theory.rs:
