/root/repo/target/release/deps/fedms_tensor-7bfd9ebd22a319a6.d: crates/tensor/src/lib.rs crates/tensor/src/conv.rs crates/tensor/src/error.rs crates/tensor/src/ops.rs crates/tensor/src/rng.rs crates/tensor/src/shape.rs crates/tensor/src/stats.rs crates/tensor/src/tensor.rs

/root/repo/target/release/deps/libfedms_tensor-7bfd9ebd22a319a6.rlib: crates/tensor/src/lib.rs crates/tensor/src/conv.rs crates/tensor/src/error.rs crates/tensor/src/ops.rs crates/tensor/src/rng.rs crates/tensor/src/shape.rs crates/tensor/src/stats.rs crates/tensor/src/tensor.rs

/root/repo/target/release/deps/libfedms_tensor-7bfd9ebd22a319a6.rmeta: crates/tensor/src/lib.rs crates/tensor/src/conv.rs crates/tensor/src/error.rs crates/tensor/src/ops.rs crates/tensor/src/rng.rs crates/tensor/src/shape.rs crates/tensor/src/stats.rs crates/tensor/src/tensor.rs

crates/tensor/src/lib.rs:
crates/tensor/src/conv.rs:
crates/tensor/src/error.rs:
crates/tensor/src/ops.rs:
crates/tensor/src/rng.rs:
crates/tensor/src/shape.rs:
crates/tensor/src/stats.rs:
crates/tensor/src/tensor.rs:
