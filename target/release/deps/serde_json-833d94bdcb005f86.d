/root/repo/target/release/deps/serde_json-833d94bdcb005f86.d: vendor/serde_json/src/lib.rs

/root/repo/target/release/deps/libserde_json-833d94bdcb005f86.rlib: vendor/serde_json/src/lib.rs

/root/repo/target/release/deps/libserde_json-833d94bdcb005f86.rmeta: vendor/serde_json/src/lib.rs

vendor/serde_json/src/lib.rs:
