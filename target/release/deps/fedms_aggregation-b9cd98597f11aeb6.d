/root/repo/target/release/deps/fedms_aggregation-b9cd98597f11aeb6.d: crates/aggregation/src/lib.rs crates/aggregation/src/bulyan.rs crates/aggregation/src/clipping.rs crates/aggregation/src/error.rs crates/aggregation/src/geomedian.rs crates/aggregation/src/krum.rs crates/aggregation/src/mean.rs crates/aggregation/src/median.rs crates/aggregation/src/normbound.rs crates/aggregation/src/rule.rs crates/aggregation/src/trimmed.rs

/root/repo/target/release/deps/libfedms_aggregation-b9cd98597f11aeb6.rlib: crates/aggregation/src/lib.rs crates/aggregation/src/bulyan.rs crates/aggregation/src/clipping.rs crates/aggregation/src/error.rs crates/aggregation/src/geomedian.rs crates/aggregation/src/krum.rs crates/aggregation/src/mean.rs crates/aggregation/src/median.rs crates/aggregation/src/normbound.rs crates/aggregation/src/rule.rs crates/aggregation/src/trimmed.rs

/root/repo/target/release/deps/libfedms_aggregation-b9cd98597f11aeb6.rmeta: crates/aggregation/src/lib.rs crates/aggregation/src/bulyan.rs crates/aggregation/src/clipping.rs crates/aggregation/src/error.rs crates/aggregation/src/geomedian.rs crates/aggregation/src/krum.rs crates/aggregation/src/mean.rs crates/aggregation/src/median.rs crates/aggregation/src/normbound.rs crates/aggregation/src/rule.rs crates/aggregation/src/trimmed.rs

crates/aggregation/src/lib.rs:
crates/aggregation/src/bulyan.rs:
crates/aggregation/src/clipping.rs:
crates/aggregation/src/error.rs:
crates/aggregation/src/geomedian.rs:
crates/aggregation/src/krum.rs:
crates/aggregation/src/mean.rs:
crates/aggregation/src/median.rs:
crates/aggregation/src/normbound.rs:
crates/aggregation/src/rule.rs:
crates/aggregation/src/trimmed.rs:
