/root/repo/target/release/deps/fedms_attacks-30011f748a59383e.d: crates/attacks/src/lib.rs crates/attacks/src/adaptive.rs crates/attacks/src/backward.rs crates/attacks/src/client.rs crates/attacks/src/context.rs crates/attacks/src/equivocation.rs crates/attacks/src/error.rs crates/attacks/src/kind.rs crates/attacks/src/noise.rs crates/attacks/src/random.rs crates/attacks/src/safeguard.rs crates/attacks/src/signflip.rs crates/attacks/src/stealth.rs

/root/repo/target/release/deps/libfedms_attacks-30011f748a59383e.rlib: crates/attacks/src/lib.rs crates/attacks/src/adaptive.rs crates/attacks/src/backward.rs crates/attacks/src/client.rs crates/attacks/src/context.rs crates/attacks/src/equivocation.rs crates/attacks/src/error.rs crates/attacks/src/kind.rs crates/attacks/src/noise.rs crates/attacks/src/random.rs crates/attacks/src/safeguard.rs crates/attacks/src/signflip.rs crates/attacks/src/stealth.rs

/root/repo/target/release/deps/libfedms_attacks-30011f748a59383e.rmeta: crates/attacks/src/lib.rs crates/attacks/src/adaptive.rs crates/attacks/src/backward.rs crates/attacks/src/client.rs crates/attacks/src/context.rs crates/attacks/src/equivocation.rs crates/attacks/src/error.rs crates/attacks/src/kind.rs crates/attacks/src/noise.rs crates/attacks/src/random.rs crates/attacks/src/safeguard.rs crates/attacks/src/signflip.rs crates/attacks/src/stealth.rs

crates/attacks/src/lib.rs:
crates/attacks/src/adaptive.rs:
crates/attacks/src/backward.rs:
crates/attacks/src/client.rs:
crates/attacks/src/context.rs:
crates/attacks/src/equivocation.rs:
crates/attacks/src/error.rs:
crates/attacks/src/kind.rs:
crates/attacks/src/noise.rs:
crates/attacks/src/random.rs:
crates/attacks/src/safeguard.rs:
crates/attacks/src/signflip.rs:
crates/attacks/src/stealth.rs:
